package sweepd_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/sweepd"
)

// telemetryCollector gathers forwarded snapshots per job-wide point index.
// Snapshots for different points interleave arbitrarily (groups run
// concurrently); within one point they must arrive in emission order.
type telemetryCollector struct {
	mu    sync.Mutex
	snaps map[int][]core.IntervalSnapshot
}

func newTelemetryCollector() *telemetryCollector {
	return &telemetryCollector{snaps: make(map[int][]core.IntervalSnapshot)}
}

func (c *telemetryCollector) add(index int, snap core.IntervalSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snaps[index] = append(c.snaps[index], snap)
}

// verify folds each point's streamed windows back into a Result and checks
// they reconstruct that point's final statistics exactly — the sweepd-level
// form of the core equivalence test, proving nothing is lost or duplicated
// crossing the scheduler (and, for remote runs, the wire).
func (c *telemetryCollector) verify(t *testing.T, every uint64, results []sweep.Result) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx, res := range results {
		if res.Err != nil {
			t.Fatalf("point %d failed: %v", idx, res.Err)
		}
		snaps := c.snaps[idx]
		if len(snaps) == 0 {
			t.Fatalf("point %d: no telemetry snapshots forwarded", idx)
		}
		var sum core.Result
		for i, s := range snaps {
			if s.Core != idx {
				t.Fatalf("point %d snapshot %d: Core = %d, want job-wide index %d", idx, i, s.Core, idx)
			}
			if s.Seq != uint64(i) {
				t.Fatalf("point %d snapshot %d: Seq = %d, want %d", idx, i, s.Seq, i)
			}
			if i > 0 && s.StartCycle != snaps[i-1].EndCycle {
				t.Fatalf("point %d snapshot %d: window [%d,%d) not contiguous with previous end %d",
					idx, i, s.StartCycle, s.EndCycle, snaps[i-1].EndCycle)
			}
			if !s.Final && s.EndCycle%every != 0 {
				t.Fatalf("point %d snapshot %d: non-final EndCycle %d not a multiple of %d",
					idx, i, s.EndCycle, every)
			}
			if len(s.PipeTail) != 0 {
				t.Fatalf("point %d snapshot %d: pipe tail crossed the scheduler", idx, i)
			}
			s.Accumulate(&sum)
		}
		last := snaps[len(snaps)-1]
		if !last.Final {
			t.Fatalf("point %d: last snapshot not Final", idx)
		}
		if snaps[0].StartCycle != 0 || last.EndCycle != res.Res.Cycles {
			t.Fatalf("point %d: windows span [%d,%d), want [0,%d)",
				idx, snaps[0].StartCycle, last.EndCycle, res.Res.Cycles)
		}
		if !reflect.DeepEqual(sum.Counters, res.Res.Counters) {
			t.Fatalf("point %d: accumulated counters differ from final result", idx)
		}
		if !reflect.DeepEqual(sum.ICache, res.Res.ICache) || !reflect.DeepEqual(sum.DCache, res.Res.DCache) {
			t.Fatalf("point %d: accumulated cache stats differ from final result", idx)
		}
		if !reflect.DeepEqual(sum.IFQ, res.Res.IFQ) || !reflect.DeepEqual(sum.RB, res.Res.RB) ||
			!reflect.DeepEqual(sum.LSQ, res.Res.LSQ) {
			t.Fatalf("point %d: accumulated occupancies differ from final result", idx)
		}
	}
}

// TestLoopbackTelemetryEquivalence: a telemetry-streaming job over loopback
// workers returns results identical to the plain runner, and each point's
// streamed windows sum back to its final statistics.
func TestLoopbackTelemetryEquivalence(t *testing.T) {
	job := testJob(t)
	want := reference(t, job)
	const every = 2048
	col := newTelemetryCollector()
	job.TelemetryEvery = every
	job.OnTelemetry = col.add
	ws, _ := loopbackWorkers(2)
	got, err := sweepd.Run(context.Background(), job, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("telemetry-streaming results differ from the plain runner's")
	}
	col.verify(t, every, got)
}

// TestRemoteTelemetryEquivalence: the same guarantee across a real TCP
// cluster — snapshots ride the worker→coordinator→client wire tagged with
// job-wide point indices, and the results stay byte-identical to a
// non-telemetry run.
func TestRemoteTelemetryEquivalence(t *testing.T) {
	addr, _ := cluster(t, 2, nil)
	job := testJob(t)
	want := reference(t, job)
	const every = 2048
	col := newTelemetryCollector()
	job.TelemetryEvery = every
	job.OnTelemetry = col.add
	got, err := sweepd.RunRemote(context.Background(), addr, job, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("remote telemetry-streaming results differ from the plain runner's")
	}
	col.verify(t, every, got)
}
