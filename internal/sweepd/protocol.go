// Wire protocol for the sharded sweep service. Everything that crosses the
// network is defined in this file: length-prefixed JSON envelopes over TCP,
// with the engine configuration shipped as the declarative configfile
// schema (plus the fields that schema omits) rather than live Go values —
// cache models travel as geometry, observers and pipe tracers never travel
// at all. Trace payloads ride along as delta-compressed containers (the
// tracecache spill format), base64-coded by JSON.
//
// Compatibility: protoVersion gates the envelope shape, and the trace-key
// content address (tracecache.Key.ID()) gates routing — a golden test pins
// the latter so an accidental key-format change fails loudly instead of
// silently splitting coordinator and worker caches across versions.
package sweepd

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/configfile"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// protoVersion is bumped on any incompatible change to the wire types.
// Version 2 added checkpoint shipping: assignments carry prior per-point
// checkpoints to resume from, and workers stream msgCheckpoint messages so
// a requeued group resumes on a survivor instead of restarting at cycle 0.
// Version 3 added live telemetry streaming: jobs and assignments carry a
// TelemetryEvery cadence, and workers stream msgTelemetry messages — one
// core.IntervalSnapshot window delta per in-flight point per boundary —
// which the coordinator forwards to the submitting client.
// Version 4 added liveness: both ends of every connection stream msgPing
// heartbeat frames and arm read/write deadlines, so a hung peer — TCP
// established, nothing flowing — is detected within the heartbeat timeout
// and treated as dead instead of stalling a job forever.
const protoVersion = 4

// Liveness defaults for protocol v4 connections. Any received frame
// (pings included) feeds the read deadline, so the timeout only fires
// after that much genuine silence — at the default ratio, four missed
// heartbeats.
const (
	// DefaultHeartbeatInterval is the cadence at which each end of a
	// connection emits msgPing frames when the owner does not override it.
	DefaultHeartbeatInterval = 5 * time.Second
	// DefaultHeartbeatTimeout is the silence after which a peer is
	// declared hung: reads and writes past it fail with
	// os.ErrDeadlineExceeded and the connection is torn down.
	DefaultHeartbeatTimeout = 20 * time.Second
	// defaultHandshakeTimeout bounds the hello exchange, so a peer that
	// connects and never speaks cannot pin a handler goroutine.
	defaultHandshakeTimeout = 10 * time.Second
)

// maxMessageBytes bounds one framed message; a 4M-instruction shipped
// trace container is on the order of 10 MB, so 1 GiB is generous headroom
// while still rejecting a corrupt length prefix immediately.
const maxMessageBytes = 1 << 30

// Roles sent in the hello handshake.
const (
	roleWorker      = "worker"
	roleClient      = "client"
	roleCoordinator = "coordinator"
)

// Message types.
const (
	msgHello      = "hello"      // both directions, first message on a connection
	msgJob        = "job"        // client -> coordinator: submit a sweep
	msgAssign     = "assign"     // coordinator -> worker: run one key-group
	msgCancel     = "cancel"     // coordinator -> worker: abort one assignment
	msgResult     = "result"     // worker -> coordinator -> client: one point done
	msgCheckpoint = "checkpoint" // worker -> coordinator: one point's latest engine state
	msgTelemetry  = "telemetry"  // worker -> coordinator -> client: one point's interval snapshot
	msgGroupEnd   = "group_end"  // worker -> coordinator: assignment finished
	msgDone       = "done"       // coordinator -> client: job finished
	msgPing       = "ping"       // both directions: liveness heartbeat, no payload
)

// Fault-injection site keys for the wire layer (see internal/faults and
// docs/ROBUSTNESS.md). Each names one guarded operation; the chaos suite
// arms seeded schedules against them. Exported so chaos tests and
// operators' fault configs can name them.
const (
	// FaultWorkerSend guards every frame a worker writes to the
	// coordinator (results, checkpoints, heartbeats).
	FaultWorkerSend = "sweepd.worker.send"
	// FaultWorkerRecv guards every frame a worker reads.
	FaultWorkerRecv = "sweepd.worker.recv"
	// FaultCoordSend guards every frame the coordinator writes to one
	// peer (assignments, forwarded results, heartbeats).
	FaultCoordSend = "sweepd.coordinator.send"
	// FaultCoordRecv guards every frame the coordinator reads.
	FaultCoordRecv = "sweepd.coordinator.recv"
)

// ErrKillMidFrame, injected at a send site, makes the wire write a torn
// frame (prefix plus half the payload) and drop the connection — the
// observable signature of a process dying inside a write.
var ErrKillMidFrame = errors.New("sweepd: injected mid-frame kill")

// Message is the single wire envelope; Type selects which payload field is
// populated.
type Message struct {
	Type       string          `json:"type"`
	Hello      *Hello          `json:"hello,omitempty"`
	Job        *WireJob        `json:"job,omitempty"`
	Assign     *Assignment     `json:"assign,omitempty"`
	Cancel     *Cancel         `json:"cancel,omitempty"`
	Result     *WireResult     `json:"result,omitempty"`
	Checkpoint *CheckpointShip `json:"checkpoint,omitempty"`
	Telemetry  *TelemetryShip  `json:"telemetry,omitempty"`
	GroupEnd   *GroupEnd       `json:"group_end,omitempty"`
	Done       *Done           `json:"done,omitempty"`
}

// Hello opens every connection.
type Hello struct {
	Proto int    `json:"proto"`
	Role  string `json:"role"`
	Name  string `json:"name,omitempty"`
	// PingMillis and DeadMillis, set in the coordinator's hello, advertise
	// the fabric's heartbeat cadence and silence tolerance. Workers and
	// clients without explicit overrides adopt them, so one coordinator
	// setting tunes the whole cluster's liveness — and a peer never pings
	// slower than the coordinator's patience.
	PingMillis int64 `json:"ping_ms,omitempty"`
	DeadMillis int64 `json:"dead_ms,omitempty"`
}

// ConfigSpec is the wire form of core.Config: the configfile schema plus
// the engine fields that schema does not carry. Live hooks (PipeTracer,
// Observer) and custom cache models have no wire form — remote sweeps
// reject points that need them.
type ConfigSpec struct {
	configfile.File
	FUs       uarch.FUConfig `json:"fus"`
	MaxCycles uint64         `json:"max_cycles,omitempty"`
}

// SpecOf converts an engine configuration for the wire. It fails on
// configurations a remote worker cannot reconstruct: custom cache models
// (anything but the built-in set-associative cache) and pipeline tracers.
func SpecOf(cfg core.Config) (ConfigSpec, error) {
	if cfg.PipeTracer != nil {
		return ConfigSpec{}, fmt.Errorf("sweepd: a PipeTracer cannot cross the network; clear it or sweep locally")
	}
	if cfg.CheckpointSink != nil {
		return ConfigSpec{}, fmt.Errorf("sweepd: a CheckpointSink cannot cross the network; clear it or sweep locally (workers checkpoint on their own cadence)")
	}
	if cfg.TelemetrySink != nil {
		return ConfigSpec{}, fmt.Errorf("sweepd: a TelemetrySink cannot cross the network; clear it or sweep locally (remote telemetry streams via the job's TelemetryEvery instead)")
	}
	f := configfile.FromConfig(cfg)
	if cfg.ICache != nil && f.ICache == nil {
		return ConfigSpec{}, fmt.Errorf("sweepd: custom instruction-cache model %T is not serializable for a remote sweep", cfg.ICache)
	}
	if cfg.DCache != nil && f.DCache == nil {
		return ConfigSpec{}, fmt.Errorf("sweepd: custom data-cache model %T is not serializable for a remote sweep", cfg.DCache)
	}
	return ConfigSpec{File: f, FUs: cfg.FUs, MaxCycles: cfg.MaxCycles}, nil
}

// Config materializes the spec into a validated engine configuration.
// Materialization is deterministic, so a coordinator and its workers derive
// identical trace keys from the same spec.
func (s ConfigSpec) Config() (core.Config, error) {
	cfg, err := s.File.ToConfig()
	if err != nil {
		return core.Config{}, err
	}
	cfg.FUs = s.FUs
	cfg.MaxCycles = s.MaxCycles
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// WirePoint is one design point on the wire. Index is the point's position
// in the submitted job, the identity results are keyed by.
type WirePoint struct {
	Index  int        `json:"index"`
	Name   string     `json:"name"`
	Config ConfigSpec `json:"config"`
}

// WireJob is a client's sweep submission.
type WireJob struct {
	Profile      workload.Profile `json:"profile"`
	Instructions uint64           `json:"instructions"`
	Points       []WirePoint      `json:"points"`
	// TelemetryEvery, when non-zero, asks workers to stream per-interval
	// engine telemetry for every in-flight point at this cycle cadence
	// (msgTelemetry messages, forwarded to the client).
	TelemetryEvery uint64 `json:"telemetry_every,omitempty"`
}

// WireJobOf converts an in-process job for submission, validating every
// point is expressible on the wire. The job platform (internal/jobd) and
// the TCP client share this as the canonical job serialization.
func WireJobOf(job *Job) (*WireJob, error) {
	wj := &WireJob{Profile: job.Profile, Instructions: job.Instructions,
		TelemetryEvery: job.TelemetryEvery,
		Points:         make([]WirePoint, len(job.Points))}
	for i, pt := range job.Points {
		spec, err := SpecOf(pt.Config)
		if err != nil {
			return nil, fmt.Errorf("point %d (%s): %w", i, pt.Name, err)
		}
		wj.Points[i] = WirePoint{Index: i, Name: pt.Name, Config: spec}
	}
	return wj, nil
}

// JobFromWire materializes a received job, validating every point's
// configuration. Point order follows the wire order; each point's Index
// must equal its position.
func JobFromWire(wj *WireJob) (*Job, error) {
	job := &Job{Profile: wj.Profile, Instructions: wj.Instructions,
		TelemetryEvery: wj.TelemetryEvery,
		Points:         make([]sweep.Point, len(wj.Points))}
	for i, wp := range wj.Points {
		if wp.Index != i {
			return nil, fmt.Errorf("sweepd: point %d arrived with index %d", i, wp.Index)
		}
		cfg, err := wp.Config.Config()
		if err != nil {
			return nil, fmt.Errorf("sweepd: point %d (%s): %w", i, wp.Name, err)
		}
		job.Points[i] = sweep.Point{Name: wp.Name, Config: cfg}
	}
	return job, nil
}

// Assignment hands one key-group to a worker. Call identifies the
// assignment for results, completion and cancellation. Trace, when
// non-empty, is the group's generated trace as a delta-compressed container
// — shipped from the coordinator's cache so the worker can seed its own
// instead of regenerating.
type Assignment struct {
	Call         uint64           `json:"call"`
	KeyID        string           `json:"key_id"`
	Profile      workload.Profile `json:"profile"`
	Instructions uint64           `json:"instructions"`
	Points       []WirePoint      `json:"points"`
	Trace        []byte           `json:"trace,omitempty"`
	// Checkpoints carries the latest serialized engine checkpoint per
	// job-wide point index (core.Checkpoint encoding), captured by a
	// previous owner of this group; the worker resumes those points from
	// their checkpointed cycle instead of cycle 0.
	Checkpoints map[int][]byte `json:"checkpoints,omitempty"`
	// TelemetryEvery, when non-zero, makes the worker stream msgTelemetry
	// snapshots for every in-flight point at this cycle cadence (the job's
	// cadence, copied into each assignment).
	TelemetryEvery uint64 `json:"telemetry_every,omitempty"`
}

// Cancel aborts one in-flight assignment on a worker.
type Cancel struct {
	Call uint64 `json:"call"`
}

// CheckpointShip streams one point's latest serialized engine state from a
// worker to the coordinator, which holds it as the group's resume point in
// case the worker dies. Data is the core.Checkpoint encoding.
type CheckpointShip struct {
	Call  uint64 `json:"call"`
	Index int    `json:"index"`
	Data  []byte `json:"data"`
}

// TelemetryShip streams one point's per-interval telemetry snapshot.
// Worker -> coordinator it carries Call and the group-relative point is
// already remapped: Index (and Snap.Core) are the job-wide point index.
// Coordinator -> client the Call is cleared. Pipe-trace tails never cross
// the wire (they are a local-sink feature).
type TelemetryShip struct {
	Call  uint64                `json:"call,omitempty"`
	Index int                   `json:"index"`
	Snap  core.IntervalSnapshot `json:"snap"`
}

// WireRunResult is core.Result without the live Config (reconstructed from
// the point's spec on the receiving side).
type WireRunResult struct {
	core.Counters
	ICache cache.Stats     `json:"icache"`
	DCache cache.Stats     `json:"dcache"`
	IFQ    stats.Occupancy `json:"ifq"`
	RB     stats.Occupancy `json:"rb"`
	LSQ    stats.Occupancy `json:"lsq"`
}

// WireRunResultOf strips a result to its wire form (the configuration is
// reattached receiver-side via Result). Shared with the job platform.
func WireRunResultOf(r core.Result) *WireRunResult {
	return &WireRunResult{Counters: r.Counters,
		ICache: r.ICache, DCache: r.DCache, IFQ: r.IFQ, RB: r.RB, LSQ: r.LSQ}
}

// Result rebuilds the engine result around the receiver-side configuration.
func (w *WireRunResult) Result(cfg core.Config) core.Result {
	return core.Result{Counters: w.Counters,
		ICache: w.ICache, DCache: w.DCache, IFQ: w.IFQ, RB: w.RB, LSQ: w.LSQ,
		Config: cfg}
}

// WireResult reports one completed point. Worker -> coordinator it carries
// Call; coordinator -> client it instead carries the job-wide progress
// counters Done/Total (the coordinator-side progress the client forwards to
// its session observer).
type WireResult struct {
	Call  uint64         `json:"call,omitempty"`
	Index int            `json:"index"`
	Name  string         `json:"name,omitempty"`
	Err   string         `json:"err,omitempty"`
	Res   *WireRunResult `json:"res,omitempty"`
	Done  int            `json:"done,omitempty"`
	Total int            `json:"total,omitempty"`
}

// GroupEnd closes one assignment. A non-empty Err means the worker could
// not finish the group (shutdown mid-run); the coordinator requeues the
// remainder elsewhere.
type GroupEnd struct {
	Call uint64 `json:"call"`
	Err  string `json:"err,omitempty"`
}

// Done closes a client job.
type Done struct {
	Err string `json:"err,omitempty"`
}

// wire frames messages over one connection: a 4-byte big-endian length
// prefix followed by the JSON envelope. Reads are single-consumer; writes
// are mutex-serialized so result streams from concurrent assignments
// interleave whole messages.
//
// Liveness (protocol v4): when readTimeout/writeTimeout are set, every
// framed operation arms a connection deadline from the injectable clock,
// and a heartbeat goroutine keeps frames flowing in quiet periods — so a
// hung peer surfaces as os.ErrDeadlineExceeded on this end. sendSite and
// recvSite name the wire's fault-injection points (nil inj injects
// nothing and costs one pointer test).
type wire struct {
	conn net.Conn
	br   *bufio.Reader
	wmu  sync.Mutex
	bw   *bufio.Writer

	clock        faults.Clock // nil means faults.System
	inj          *faults.Injector
	sendSite     string
	recvSite     string
	readTimeout  time.Duration // max silence tolerated per framed read (0 = none)
	writeTimeout time.Duration // max block per framed write (0 = none)
}

func newWire(conn net.Conn) *wire {
	return &wire{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// now reads the wire's clock; the fabric never consults time.Now directly.
func (w *wire) now() time.Time {
	if w.clock != nil {
		return w.clock.Now()
	}
	return faults.System.Now()
}

// after defers to the wire's clock for heartbeat pacing.
func (w *wire) after(d time.Duration) <-chan time.Time {
	if w.clock != nil {
		return w.clock.After(d)
	}
	return faults.System.After(d)
}

func (w *wire) send(m *Message) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(payload) > maxMessageBytes {
		return fmt.Errorf("sweepd: message of %d bytes exceeds the %d-byte frame limit", len(payload), maxMessageBytes)
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(len(payload)))
	w.wmu.Lock()
	defer w.wmu.Unlock()
	// The injection point sits inside the write lock: a Hang rule here
	// wedges the whole write path — heartbeats included — which is
	// exactly how a truly hung process looks from the other end.
	if err := w.inj.At(w.sendSite); err != nil {
		if errors.Is(err, ErrKillMidFrame) {
			w.bw.Write(prefix[:])
			w.bw.Write(payload[:len(payload)/2])
			w.bw.Flush()
			w.conn.Close()
		}
		return err
	}
	if w.writeTimeout > 0 {
		_ = w.conn.SetWriteDeadline(w.now().Add(w.writeTimeout))
	}
	if _, err := w.bw.Write(prefix[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(payload); err != nil {
		return err
	}
	return w.bw.Flush()
}

func (w *wire) recv() (*Message, error) {
	if err := w.inj.At(w.recvSite); err != nil {
		w.conn.Close()
		return nil, err
	}
	var prefix [4]byte
	if w.readTimeout > 0 {
		_ = w.conn.SetReadDeadline(w.now().Add(w.readTimeout))
	}
	if _, err := io.ReadFull(w.br, prefix[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(prefix[:])
	if n > maxMessageBytes {
		return nil, fmt.Errorf("sweepd: frame of %d bytes exceeds the %d-byte limit", n, maxMessageBytes)
	}
	payload := make([]byte, n)
	if w.readTimeout > 0 {
		_ = w.conn.SetReadDeadline(w.now().Add(w.readTimeout))
	}
	if _, err := io.ReadFull(w.br, payload); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("sweepd: corrupt frame: %w", err)
	}
	return &m, nil
}

// heartbeat streams msgPing frames every interval until stop closes or a
// send fails. Any frame feeds the peer's read deadline, so pings only
// matter when no data is flowing — which is precisely when a hung peer
// would otherwise be indistinguishable from a quiet one.
func (w *wire) heartbeat(interval time.Duration, stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		case <-w.after(interval):
			if w.send(&Message{Type: msgPing}) != nil {
				return
			}
		}
	}
}

func (w *wire) Close() error { return w.conn.Close() }

// handshake sends our hello (Proto filled in) and validates the peer's.
func handshake(w *wire, hello Hello, wantRoles ...string) (*Hello, error) {
	hello.Proto = protoVersion
	if err := w.send(&Message{Type: msgHello, Hello: &hello}); err != nil {
		return nil, err
	}
	m, err := w.recv()
	if err != nil {
		return nil, err
	}
	if m.Type != msgHello || m.Hello == nil {
		return nil, fmt.Errorf("sweepd: expected hello, got %q", m.Type)
	}
	if m.Hello.Proto != protoVersion {
		return nil, fmt.Errorf("sweepd: protocol version %d, want %d", m.Hello.Proto, protoVersion)
	}
	if len(wantRoles) > 0 {
		ok := false
		for _, r := range wantRoles {
			if m.Hello.Role == r {
				ok = true
			}
		}
		if !ok {
			return nil, fmt.Errorf("sweepd: unexpected peer role %q", m.Hello.Role)
		}
	}
	return m.Hello, nil
}

// livenessParams resolves a peer's heartbeat interval and timeout: an
// explicit local override wins, then the coordinator's advertised values,
// then the protocol defaults. Negative overrides disable.
func livenessParams(interval, timeout time.Duration, hello *Hello) (time.Duration, time.Duration) {
	switch {
	case interval < 0:
		interval = 0
	case interval == 0 && hello != nil && hello.PingMillis > 0:
		interval = time.Duration(hello.PingMillis) * time.Millisecond
	case interval == 0:
		interval = DefaultHeartbeatInterval
	}
	switch {
	case timeout < 0:
		timeout = 0
	case timeout == 0 && hello != nil && hello.DeadMillis > 0:
		timeout = time.Duration(hello.DeadMillis) * time.Millisecond
	case timeout == 0:
		timeout = DefaultHeartbeatTimeout
	}
	return interval, timeout
}

// errString flattens an error for the wire.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
