// Package gen is the paper's future-work configuration tool: "We are
// investigating the creation of a software tool that would automatically
// produce custom ReSim versions according to user parameters" (§VI). Given
// an engine configuration it emits a VHDL-like structural description of
// the custom ReSim instance — top-level generics, one component per
// simulated stage and structure, the generated branch predictor entity —
// together with the modeled resource budget and a device fit report.
//
// The output is a design document for the hardware ReSim this repository
// models, not synthesizable VHDL; its value is that every generic is
// derived from the same Config the timing engine runs, so the description
// and the simulation can never drift apart.
package gen

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/uarch"
)

// Generate renders the custom ReSim description for cfg, targeting dev for
// the fit report.
func Generate(cfg core.Config, dev fpga.Device) (string, error) {
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	area, err := fpga.EstimateArea(cfg)
	if err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("-- Custom ReSim instance, generated from the engine configuration.\n")
	fmt.Fprintf(&sb, "-- Internal pipeline: %v (K = %d minor cycles per major cycle).\n\n",
		cfg.Organization, cfg.MinorCyclesPerMajor())

	sb.WriteString("entity resim_top is\n  generic (\n")
	fmt.Fprintf(&sb, "    WIDTH            : integer := %d;\n", cfg.Width)
	fmt.Fprintf(&sb, "    IFQ_ENTRIES      : integer := %d;\n", cfg.IFQSize)
	fmt.Fprintf(&sb, "    RB_ENTRIES       : integer := %d;\n", cfg.RBSize)
	fmt.Fprintf(&sb, "    LSQ_ENTRIES      : integer := %d;\n", cfg.LSQSize)
	fmt.Fprintf(&sb, "    MEM_READ_PORTS   : integer := %d;\n", cfg.MemReadPorts)
	fmt.Fprintf(&sb, "    MEM_WRITE_PORTS  : integer := %d;\n", cfg.MemWritePorts)
	fmt.Fprintf(&sb, "    MISFETCH_PENALTY : integer := %d;\n", cfg.MisfetchPenalty)
	fmt.Fprintf(&sb, "    MISPRED_PENALTY  : integer := %d;\n", cfg.MispredPenalty)
	fmt.Fprintf(&sb, "    MINOR_PER_MAJOR  : integer := %d\n", cfg.MinorCyclesPerMajor())
	sb.WriteString("  );\nend resim_top;\n\n")

	sb.WriteString("architecture structural of resim_top is\n")
	fuOrder := []struct {
		cls  uarch.FUClass
		name string
	}{{uarch.FUALU, "ALU"}, {uarch.FUMult, "MUL"}, {uarch.FUDiv, "DIV"}}
	for _, fu := range fuOrder {
		cls, name := fu.cls, fu.name
		spec := cfg.FUs[cls]
		pipe := "false"
		if spec.Pipelined {
			pipe = "true"
		}
		fmt.Fprintf(&sb, "  -- %s pool: %d unit(s), latency %d, pipelined %s\n",
			name, spec.Count, spec.Latency, pipe)
	}
	sb.WriteString("begin\n")
	stages := []struct{ inst, comment string }{
		{"u_fetch: fetch_stage", "IFQ, target resolution, misfetch check"},
		{"u_dispatch: dispatch_stage", "decouple buffer, rename table access, RB/LSQ allocate"},
		{"u_issue: issue_stage", "serial issue slots, FU arbitration"},
		{"u_lsq_refresh: lsq_refresh_stage", "memory disambiguation, store-to-load forwarding"},
		{"u_writeback: writeback_stage", "oldest-first broadcast and wakeup"},
		{"u_commit: commit_stage", "store release, predictor update, recovery"},
		{"u_rename: rename_table", "architectural register to producer map"},
		{"u_rob: reorder_buffer", "age-ordered instruction window"},
		{"u_lsq: load_store_queue", "age-ordered memory window"},
	}
	for _, s := range stages {
		fmt.Fprintf(&sb, "  %s; -- %s\n", s.inst, s.comment)
	}
	if cfg.PerfectBP {
		sb.WriteString("  -- branch predictor omitted: perfect prediction configuration\n")
	} else {
		sb.WriteString("  u_bpred: branch_predictor; -- generated entity follows\n")
	}
	icDesc := cacheDesc("icache_tags", cfg.ICache)
	dcDesc := cacheDesc("dcache_tags", cfg.DCache)
	sb.WriteString("  " + icDesc + "\n")
	sb.WriteString("  " + dcDesc + "\n")
	sb.WriteString("end structural;\n\n")

	if !cfg.PerfectBP {
		sb.WriteString(cfg.Predictor.Describe())
		sb.WriteString("\n")
	}

	total := area.Total()
	fmt.Fprintf(&sb, "-- Modeled resources: %d slices, %d LUTs, %d BRAMs (Virtex-4 units)\n",
		total.Slices, total.LUTs, total.BRAMs)
	fits, n := area.FitsIn(dev)
	if fits {
		fmt.Fprintf(&sb, "-- Fit: %s holds %d instance(s)\n", dev.Name, n)
	} else {
		fmt.Fprintf(&sb, "-- Fit: design does NOT fit %s\n", dev.Name)
	}
	mcps := dev.MinorClockMHz / float64(cfg.MinorCyclesPerMajor())
	fmt.Fprintf(&sb, "-- At %.0f MHz minor clock: %.2f M simulated cycles/s (x IPC = simulation MIPS)\n",
		dev.MinorClockMHz, mcps)
	return sb.String(), nil
}

func cacheDesc(name string, m cache.Model) string {
	c, ok := m.(*cache.Cache)
	if !ok {
		if h, isHier := m.(*cache.Hierarchy); isHier {
			c = h.L1()
			ok = true
		}
	}
	if !ok || c == nil {
		return fmt.Sprintf("-- %s omitted: perfect memory configuration", name)
	}
	g := c.Config()
	return fmt.Sprintf("u_%s: cache_tag_unit; -- %dKB, %d-way, %dB blocks (%d sets, hit/miss only)",
		name, g.SizeBytes>>10, g.Assoc, g.BlockBytes, g.Sets())
}
