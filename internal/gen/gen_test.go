package gen

import (
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
)

func TestGenerateDefaultConfig(t *testing.T) {
	out, err := Generate(core.DefaultConfig(), fpga.Virtex4)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"entity resim_top",
		"WIDTH            : integer := 4",
		"RB_ENTRIES       : integer := 16",
		"LSQ_ENTRIES      : integer := 8",
		"MINOR_PER_MAJOR  : integer := 7",
		"u_fetch: fetch_stage",
		"u_lsq_refresh: lsq_refresh_stage",
		"u_bpred: branch_predictor",
		"entity branch_predictor",
		"PHT_SIZE",
		"perfect memory configuration",
		"holds 1 instance(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestGeneratePerfectBPAndCaches(t *testing.T) {
	cfg := core.FASTComparisonConfig()
	out, err := Generate(cfg, fpga.Virtex5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "branch predictor omitted") {
		t.Error("perfect-BP configuration still instantiates a predictor")
	}
	if strings.Contains(out, "entity branch_predictor") {
		t.Error("predictor entity emitted for perfect BP")
	}
	if !strings.Contains(out, "32KB, 8-way, 64B blocks") {
		t.Errorf("cache description missing:\n%s", out)
	}
	if !strings.Contains(out, "MINOR_PER_MAJOR  : integer := 6") {
		t.Error("K for 2-wide improved organization should be 6")
	}
}

func TestGenerateHierarchyCache(t *testing.T) {
	cfg := core.DefaultConfig()
	h, err := cache.NewHierarchy(cache.L1Config32K("dl1"), cache.NewPerfect(20))
	if err != nil {
		t.Fatal(err)
	}
	cfg.DCache = h
	out, err := Generate(cfg, fpga.Virtex4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "u_dcache_tags: cache_tag_unit") {
		t.Error("hierarchy L1 not described")
	}
}

func TestGenerateRejectsInvalid(t *testing.T) {
	bad := core.DefaultConfig()
	bad.RBSize = 0
	if _, err := Generate(bad, fpga.Virtex4); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(core.DefaultConfig(), fpga.Virtex4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(core.DefaultConfig(), fpga.Virtex4)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("generation is not deterministic")
	}
}
