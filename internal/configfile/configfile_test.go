package configfile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

func TestRoundTripDefault(t *testing.T) {
	want := core.DefaultConfig()
	got, err := FromConfig(want).ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != want.Width || got.RBSize != want.RBSize ||
		got.LSQSize != want.LSQSize || got.IFQSize != want.IFQSize {
		t.Errorf("structure mismatch: %+v", got)
	}
	if got.Organization != want.Organization {
		t.Errorf("organization = %v", got.Organization)
	}
	if got.Predictor != want.Predictor {
		t.Errorf("predictor mismatch:\n%+v\n%+v", got.Predictor, want.Predictor)
	}
	if got.ICache != nil || got.DCache != nil {
		t.Error("perfect memory did not round-trip")
	}
}

func TestRoundTripFASTConfig(t *testing.T) {
	want := core.FASTComparisonConfig()
	got, err := FromConfig(want).ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if !got.PerfectBP {
		t.Error("PerfectBP lost")
	}
	if got.Organization != sched.OrgImproved {
		t.Errorf("organization = %v", got.Organization)
	}
	dl1, ok := got.DCache.(*cache.Cache)
	if !ok {
		t.Fatal("D-cache lost")
	}
	if g := dl1.Config(); g.SizeBytes != 32<<10 || g.Assoc != 8 || g.BlockBytes != 64 {
		t.Errorf("cache geometry = %+v", g)
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	want := core.DefaultConfig()
	want.Width = 2
	want.RBSize = 32
	want.Organization = sched.OrgImproved
	want.Predictor.Dir = bpred.DirCombined
	want.Predictor.MetaSize = 1024
	want.MemReadPorts = 1
	if err := Save(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Width != 2 || got.RBSize != 32 || got.Organization != sched.OrgImproved {
		t.Errorf("loaded %+v", got)
	}
	if got.Predictor.Dir != bpred.DirCombined || got.Predictor.MetaSize != 1024 {
		t.Errorf("predictor %+v", got.Predictor)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("/nonexistent/cfg.json"); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestToConfigRejectsBadValues(t *testing.T) {
	f := FromConfig(core.DefaultConfig())
	f.Organization = "pipelined"
	if _, err := f.ToConfig(); err == nil {
		t.Error("unknown organization accepted")
	}
	f = FromConfig(core.DefaultConfig())
	f.Predictor.Kind = "neural"
	if _, err := f.ToConfig(); err == nil {
		t.Error("unknown predictor accepted")
	}
	f = FromConfig(core.DefaultConfig())
	f.Width = 0
	if _, err := f.ToConfig(); err == nil {
		t.Error("invalid width accepted")
	}
	f = FromConfig(core.DefaultConfig())
	f.ICache = &CacheSpec{SizeBytes: 100, Assoc: 1, BlockBytes: 64, HitLatency: 1, MissLatency: 2}
	if _, err := f.ToConfig(); err == nil {
		t.Error("invalid cache geometry accepted")
	}
}

func TestDefaultsFillIn(t *testing.T) {
	// Empty organization and predictor kind default to the paper's.
	f := FromConfig(core.DefaultConfig())
	f.Organization = ""
	f.Predictor.Kind = ""
	cfg, err := f.ToConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Organization != sched.OrgOptimized {
		t.Error("empty organization did not default to optimized")
	}
	if cfg.Predictor.Dir != bpred.DirTwoLevel {
		t.Error("empty predictor kind did not default to 2lev")
	}
}
