// Package configfile loads and saves engine configurations as JSON, so
// bulk design-space sweeps (the paper's off-line use case) can be driven by
// declarative per-point files instead of flag soup. The schema mirrors
// core.Config but replaces the live cache models with geometry blocks.
package configfile

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sched"
)

// CacheSpec is the JSON form of a cache level.
type CacheSpec struct {
	SizeBytes   int `json:"size_bytes"`
	Assoc       int `json:"assoc"`
	BlockBytes  int `json:"block_bytes"`
	HitLatency  int `json:"hit_latency"`
	MissLatency int `json:"miss_latency"`
}

// PredictorSpec is the JSON form of the branch predictor block.
type PredictorSpec struct {
	Kind       string `json:"kind"` // 2lev, bimod, comb, taken, nottaken
	BHTSize    int    `json:"bht_size,omitempty"`
	HistLen    int    `json:"hist_len,omitempty"`
	PHTSize    int    `json:"pht_size,omitempty"`
	XORIndex   bool   `json:"xor_index,omitempty"`
	BimodSize  int    `json:"bimod_size,omitempty"`
	MetaSize   int    `json:"meta_size,omitempty"`
	BTBEntries int    `json:"btb_entries"`
	BTBAssoc   int    `json:"btb_assoc"`
	BTBTagBits int    `json:"btb_tag_bits,omitempty"`
	RASSize    int    `json:"ras_size"`
}

// File is the on-disk configuration schema.
type File struct {
	Width           int            `json:"width"`
	IFQSize         int            `json:"ifq_size"`
	RBSize          int            `json:"rb_size"`
	LSQSize         int            `json:"lsq_size"`
	MemReadPorts    int            `json:"mem_read_ports"`
	MemWritePorts   int            `json:"mem_write_ports"`
	MisfetchPenalty int            `json:"misfetch_penalty"`
	MispredPenalty  int            `json:"mispred_penalty"`
	Organization    string         `json:"organization"` // simple, improved, optimized
	PerfectBP       bool           `json:"perfect_bp,omitempty"`
	Predictor       *PredictorSpec `json:"predictor,omitempty"`
	ICache          *CacheSpec     `json:"icache,omitempty"`
	DCache          *CacheSpec     `json:"dcache,omitempty"`
}

// FromConfig converts an engine configuration into the file schema.
func FromConfig(cfg core.Config) File {
	f := File{
		Width:           cfg.Width,
		IFQSize:         cfg.IFQSize,
		RBSize:          cfg.RBSize,
		LSQSize:         cfg.LSQSize,
		MemReadPorts:    cfg.MemReadPorts,
		MemWritePorts:   cfg.MemWritePorts,
		MisfetchPenalty: cfg.MisfetchPenalty,
		MispredPenalty:  cfg.MispredPenalty,
		Organization:    cfg.Organization.String(),
		PerfectBP:       cfg.PerfectBP,
	}
	if !cfg.PerfectBP {
		p := cfg.Predictor
		f.Predictor = &PredictorSpec{
			Kind: p.Dir.String(), BHTSize: p.BHTSize, HistLen: p.HistLen,
			PHTSize: p.PHTSize, XORIndex: p.XORIndex, BimodSize: p.BimodSize,
			MetaSize: p.MetaSize, BTBEntries: p.BTBEntries, BTBAssoc: p.BTBAssoc,
			BTBTagBits: p.BTBTagBits, RASSize: p.RASSize,
		}
	}
	f.ICache = cacheSpecOf(cfg.ICache)
	f.DCache = cacheSpecOf(cfg.DCache)
	return f
}

func cacheSpecOf(m cache.Model) *CacheSpec {
	c, ok := m.(*cache.Cache)
	if !ok {
		return nil
	}
	g := c.Config()
	return &CacheSpec{SizeBytes: g.SizeBytes, Assoc: g.Assoc, BlockBytes: g.BlockBytes,
		HitLatency: g.HitLatency, MissLatency: g.MissLatency}
}

// ToConfig materializes an engine configuration; the result is validated.
func (f File) ToConfig() (core.Config, error) {
	cfg := core.DefaultConfig()
	cfg.Width = f.Width
	cfg.IFQSize = f.IFQSize
	cfg.RBSize = f.RBSize
	cfg.LSQSize = f.LSQSize
	cfg.MemReadPorts = f.MemReadPorts
	cfg.MemWritePorts = f.MemWritePorts
	cfg.MisfetchPenalty = f.MisfetchPenalty
	cfg.MispredPenalty = f.MispredPenalty
	cfg.PerfectBP = f.PerfectBP

	if f.Organization == "" { // omitted field keeps the paper's default
		cfg.Organization = sched.OrgOptimized
	} else {
		org, err := sched.OrgByName(f.Organization)
		if err != nil {
			return cfg, fmt.Errorf("configfile: %w", err)
		}
		cfg.Organization = org
	}

	if f.Predictor != nil {
		p := bpred.Config{
			BHTSize: f.Predictor.BHTSize, HistLen: f.Predictor.HistLen,
			PHTSize: f.Predictor.PHTSize, XORIndex: f.Predictor.XORIndex,
			BimodSize: f.Predictor.BimodSize, MetaSize: f.Predictor.MetaSize,
			BTBEntries: f.Predictor.BTBEntries, BTBAssoc: f.Predictor.BTBAssoc,
			BTBTagBits: f.Predictor.BTBTagBits, RASSize: f.Predictor.RASSize,
		}
		switch f.Predictor.Kind {
		case "2lev", "":
			p.Dir = bpred.DirTwoLevel
		case "bimod":
			p.Dir = bpred.DirBimodal
		case "comb":
			p.Dir = bpred.DirCombined
		case "taken":
			p.Dir = bpred.DirTaken
		case "nottaken":
			p.Dir = bpred.DirNotTaken
		default:
			return cfg, fmt.Errorf("configfile: unknown predictor kind %q", f.Predictor.Kind)
		}
		cfg.Predictor = p
	}

	var err error
	if cfg.ICache, err = buildCache("il1", f.ICache); err != nil {
		return cfg, err
	}
	if cfg.DCache, err = buildCache("dl1", f.DCache); err != nil {
		return cfg, err
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

func buildCache(name string, s *CacheSpec) (cache.Model, error) {
	if s == nil {
		return nil, nil
	}
	c := cache.Config{Name: name, SizeBytes: s.SizeBytes, Assoc: s.Assoc,
		BlockBytes: s.BlockBytes, HitLatency: s.HitLatency, MissLatency: s.MissLatency}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return cache.New(c), nil
}

// Load reads and materializes a configuration file.
func Load(path string) (core.Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return core.Config{}, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return core.Config{}, fmt.Errorf("configfile %s: %w", path, err)
	}
	return f.ToConfig()
}

// Save writes cfg to path as indented JSON.
func Save(path string, cfg core.Config) error {
	raw, err := json.MarshalIndent(FromConfig(cfg), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
