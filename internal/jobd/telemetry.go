// Live telemetry fan-out for the job platform. Every running job's engines
// emit core.IntervalSnapshot windows at the platform's telemetry cadence
// (see Options.TelemetryEvery); the platform retains the most recent
// snapshots in a bounded per-job ring so any number of clients — including
// ones that connect mid-run — can watch one job concurrently.
//
// The broker never blocks the simulation: snapshots append to the ring
// under the platform lock and waiters are woken, but delivery happens on
// each client's own goroutine from a batch copied out of the ring. A client
// too slow to keep up simply finds the ring has wrapped past it on its next
// read; the gap is counted (Metrics.TelemetryDropped) and the stream
// continues from the oldest retained snapshot. Telemetry is ephemeral by
// design: it is never journaled, a recovered job's stream starts empty, and
// a terminal job's ring serves only what it still holds.
package jobd

import (
	"context"

	"repro/internal/core"
)

// DefaultTelemetryRing is the per-job snapshot ring capacity when
// Options.TelemetryRing is zero. At the default cadence one slot covers
// 65536 cycles, so 256 slots buffer several million cycles of history for
// late-joining watchers.
const DefaultTelemetryRing = 256

// telemetryEvery returns the effective snapshot cadence in major cycles.
func (p *Platform) telemetryEvery() uint64 {
	if p.opts.TelemetryEvery > 0 {
		return p.opts.TelemetryEvery
	}
	return core.DefaultObserverInterval
}

// onTelemetry is the GroupRun sink for one job: it stamps the job-wide
// point index, appends the snapshot to the job's ring (evicting the oldest
// when full) and wakes stream waiters. Snapshots for points that already
// have a result are duplicates from a requeued group rerunning finished
// work and drop here, exactly like duplicate results.
func (p *Platform) onTelemetry(j *job, index int, snap core.IntervalSnapshot) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.state.Terminal() || j.ctx.Err() != nil ||
		index < 0 || index >= len(j.results) || j.results[index] != nil {
		return
	}
	snap.Core = index
	j.telRing = append(j.telRing, snap)
	j.telSeq++
	if over := len(j.telRing) - p.opts.TelemetryRing; over > 0 {
		j.telRing = append(j.telRing[:0], j.telRing[over:]...)
	}
	p.telemetrySnaps++
	p.broadcastLocked(j)
}

// StreamTelemetry calls fn for every interval snapshot the job emits,
// starting from the oldest snapshot still buffered (a late joiner replays
// the ring, then follows live), until the job reaches a terminal state
// (which it returns with the job's error string). fn runs without the
// platform lock; its error aborts the stream. A consumer slower than the
// emission rate loses the snapshots the ring wrapped past while it was
// busy — the loss is added to Metrics.TelemetryDropped and the stream
// resumes from the oldest retained snapshot, so one stalled watcher never
// applies backpressure to the engines or to other watchers.
func (p *Platform) StreamTelemetry(ctx context.Context, tenant, id string, fn func(core.IntervalSnapshot) error) (State, string, error) {
	p.mu.Lock()
	j := p.lookupLocked(tenant, id)
	if j == nil {
		p.mu.Unlock()
		return "", "", ErrUnknownJob
	}
	// Subscribe at the ring's oldest retained snapshot: history the ring
	// already evicted was never available to this client and does not count
	// as a drop.
	next := j.telSeq - uint64(len(j.telRing))
	p.telemetryClients++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.telemetryClients--
		p.mu.Unlock()
	}()
	for {
		p.mu.Lock()
		start := j.telSeq - uint64(len(j.telRing))
		if next < start {
			p.telemetryDropped += start - next
			next = start
		}
		batch := append([]core.IntervalSnapshot(nil), j.telRing[next-start:]...)
		next = j.telSeq
		state, errStr := j.state, j.err
		change := j.change
		p.mu.Unlock()
		for _, s := range batch {
			if err := fn(s); err != nil {
				return state, errStr, err
			}
		}
		// state and the ring were snapshotted under one lock: a terminal
		// state means no further snapshots can append (onTelemetry drops
		// after finalize), so the batch above was the last of it.
		if state.Terminal() {
			return state, errStr, nil
		}
		select {
		case <-ctx.Done():
			return state, errStr, ctx.Err()
		case <-p.ctx.Done():
			return state, errStr, ErrClosed
		case <-change:
		}
	}
}
