package jobd

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/sweepd"
)

// collectTrace streams a job's full span log (to terminal state) through
// the HTTP API and client.
func collectTrace(t *testing.T, srv *httptest.Server, token, id string) ([]TraceSpan, State) {
	t.Helper()
	c := &Client{Server: srv.URL, Token: token, HTTPClient: srv.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var spans []TraceSpan
	state, err := c.Trace(ctx, id, func(s TraceSpan) error {
		spans = append(spans, s)
		return nil
	})
	if err != nil {
		t.Fatalf("trace stream: %v", err)
	}
	return spans, state
}

// events projects a span log onto its event names.
func events(spans []TraceSpan) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Event
	}
	return out
}

// assertOrdered checks Seq is 1..n with nondecreasing timestamps and that
// the given events appear in the given relative order.
func assertOrdered(t *testing.T, spans []TraceSpan, wantOrder ...string) {
	t.Helper()
	for i, s := range spans {
		if s.Seq != uint64(i+1) {
			t.Fatalf("span %d has seq %d, want %d (full log: %v)", i, s.Seq, i+1, events(spans))
		}
		if i > 0 && s.Time.Before(spans[i-1].Time) {
			t.Errorf("span %d time regressed", i)
		}
		if i > 0 && s.ElapsedMS < spans[i-1].ElapsedMS {
			t.Errorf("span %d elapsed regressed", i)
		}
	}
	at := 0
	for _, want := range wantOrder {
		found := false
		for ; at < len(spans); at++ {
			if spans[at].Event == want {
				found = true
				at++
				break
			}
		}
		if !found {
			t.Fatalf("event order %v not found in trace %v", wantOrder, events(spans))
		}
	}
}

// TestTraceSpansLifecycle drives one job through a deterministic in-process
// worker and checks the recorded lifecycle reads submit → admit →
// dispatch → first_result → point_done → complete, with worker and group
// attribution on the dispatch span.
func TestTraceSpansLifecycle(t *testing.T) {
	w := newFakeWorker()
	p, err := New(Options{Pool: StaticPool{w}, Tenants: []Tenant{{Name: "alice", Token: "tok-a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	pts := wirePoints(t, "T1", []int{8}, []int{4, 8})
	st, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	nextRun(t, w).release <- nil

	spans, state := collectTrace(t, srv, "tok-a", st.ID)
	if state != StateDone {
		t.Fatalf("job ended %s", state)
	}
	assertOrdered(t, spans, SpanSubmit, SpanAdmit, SpanDispatch,
		SpanFirstResult, SpanPointDone, SpanComplete)
	for _, s := range spans {
		switch s.Event {
		case SpanSubmit:
			if s.Points != len(pts) || s.State != StateQueued {
				t.Errorf("submit span: points=%d state=%s", s.Points, s.State)
			}
		case SpanDispatch:
			if s.Group == "" || s.Worker == "" || s.Points != len(pts) {
				t.Errorf("dispatch span lacks attribution: %+v", s)
			}
		case SpanComplete:
			if s.State != StateDone {
				t.Errorf("complete span state=%s", s.State)
			}
		case SpanJournal:
			t.Error("journal span on a journal-less platform")
		}
	}
	// Exactly one point_done per point.
	done := 0
	for _, s := range spans {
		if s.Event == SpanPointDone {
			done++
		}
	}
	if done != len(pts) {
		t.Errorf("%d point_done spans, want %d", done, len(pts))
	}
}

// TestTraceE2EKillRequeueResume is the tracing acceptance drill over real
// TCP: a job dispatches to a worker that is killed mid-group after
// checkpointing, the group requeues onto a survivor, and the points resume
// past cycle 0 — and the job's trace must tell that whole story in order:
// submit → journal → admit → dispatch(victim) → checkpoint → requeue →
// dispatch(survivor) → resume(cycle>0) → complete.
func TestTraceE2EKillRequeueResume(t *testing.T) {
	coord := sweepd.NewCoordinator()
	dir := t.TempDir()
	p, err := New(Options{Pool: coord, JournalDir: dir,
		Tenants: []Tenant{{Name: "alice", Token: "tok-a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	coord.OnWorkersChanged = p.Kick
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	defer coord.Close()

	// Workers get their own contexts so the test can kill the victim alone.
	var wg sync.WaitGroup
	startWorker := func(ctx context.Context, name string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sweepd.Work(ctx, ln.Addr().String(), sweepd.WorkerOptions{
				Name: name, Parallelism: 1, CheckpointEvery: 2000,
			})
		}()
	}
	defer wg.Wait()
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	survivorCtx, stopSurvivor := context.WithCancel(context.Background())
	defer stopSurvivor()
	startWorker(victimCtx, "victim")
	waitWorkers := func(n int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for coord.WorkerCount() != n {
			if time.Now().After(deadline) {
				t.Fatalf("worker count stuck at %d, want %d", coord.WorkerCount(), n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitWorkers(1)

	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	c := &Client{Server: srv.URL, Token: "tok-a", HTTPClient: srv.Client()}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// One trace-key group of four points; the single-engine victim works
	// them one at a time, so the group cannot finish before the kill.
	pts := wirePoints(t, "K1", []int{8}, []int{2, 4, 8, 16})
	st, err := c.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 400_000, Points: pts})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the live trace until the scheduler holds resume state (a
	// checkpoint span), then bring up the survivor and kill the victim
	// mid-group.
	tctx, tcancel := context.WithCancel(ctx)
	sawCheckpoint := fmt.Errorf("saw checkpoint") //nolint:err113 // stream-abort sentinel
	_, err = c.Trace(tctx, st.ID, func(s TraceSpan) error {
		if s.Event == SpanCheckpoint {
			return sawCheckpoint
		}
		return nil
	})
	tcancel()
	if err != sawCheckpoint {
		t.Fatalf("waiting for a checkpoint span: %v", err)
	}
	startWorker(survivorCtx, "survivor")
	waitWorkers(2)
	killVictim()
	waitWorkers(1)

	spans, state := collectTrace(t, srv, "tok-a", st.ID)
	if state != StateDone {
		t.Fatalf("job ended %s; trace: %v", state, events(spans))
	}
	assertOrdered(t, spans, SpanSubmit, SpanJournal, SpanAdmit, SpanDispatch,
		SpanCheckpoint, SpanRequeue, SpanDispatch, SpanResume, SpanComplete)

	var dispatches, resumes []TraceSpan
	var requeue *TraceSpan
	for i, s := range spans {
		switch s.Event {
		case SpanDispatch:
			dispatches = append(dispatches, s)
		case SpanResume:
			resumes = append(resumes, s)
		case SpanRequeue:
			requeue = &spans[i]
		}
	}
	if len(dispatches) < 2 {
		t.Fatalf("%d dispatch spans, want the requeued group re-dispatched", len(dispatches))
	}
	if dispatches[0].Worker == "" || dispatches[0].Worker == dispatches[len(dispatches)-1].Worker {
		t.Errorf("dispatch attribution did not move workers: %q -> %q",
			dispatches[0].Worker, dispatches[len(dispatches)-1].Worker)
	}
	if requeue == nil || requeue.Points == 0 || requeue.Detail == "" {
		t.Fatalf("requeue span missing or unattributed: %+v", requeue)
	}
	resumed := false
	for _, s := range resumes {
		if s.Cycle > 0 {
			resumed = true
		}
	}
	if !resumed {
		t.Fatalf("no resume span with cycle > 0 — requeued points restarted from scratch; resumes: %+v", resumes)
	}
}
