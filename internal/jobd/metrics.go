// Metrics bridge between the platform's snapshot counters and the obs
// registry. The platform's own state (guarded by p.mu) stays the source of
// truth; each /metrics scrape takes ONE consistent Snapshot and applies it
// to the registry before rendering, so gauges, per-tenant maps and the
// scheduler counters always describe the same instant. The latency
// histograms are the exception: they observe at the event sites
// (dispatch, first result, finalize) because a histogram cannot be rebuilt
// from a snapshot.
package jobd

import (
	"repro/internal/obs"
)

// PlatformMetrics holds the platform's registered instrument handles.
// Exported so cmd/doclint can rebuild the inventory RegisterMetrics
// creates and diff it against docs/OBSERVABILITY.md.
type PlatformMetrics struct {
	// Snapshot-applied gauges and counters (handleMetrics Sets these from
	// one Platform.Snapshot per scrape).
	QueueDepth       *obs.Gauge
	Workers          *obs.Gauge
	DeadWorkers      *obs.Gauge
	TenantQueued     *obs.GaugeVec
	TenantRunning    *obs.GaugeVec
	Jobs             *obs.GaugeVec
	Requeues         *obs.Counter
	ResumePoints     *obs.Counter
	RecoveredJobs    *obs.Counter
	RecoveredPoints  *obs.Counter
	RecoveredCkpts   *obs.Counter
	Rejected         *obs.Counter
	TelemetrySnaps   *obs.Counter
	TelemetryDropped *obs.Counter
	TelemetryClients *obs.Gauge
	TraceSpans       *obs.Counter
	TraceDropped     *obs.Counter
	JournalTornTails *obs.Counter
	JournalCRCErrors *obs.Counter
	JournalDegraded  *obs.Counter

	// Event-site latency histograms, labeled by tenant.
	QueueWait   *obs.HistogramVec
	FirstResult *obs.HistogramVec
	JobDuration *obs.HistogramVec
}

// RegisterMetrics registers the job platform's metric families on reg and
// returns the instrument handles. Platform.New calls it once (on
// Options.Metrics, or a private registry); cmd/doclint calls it on a
// throwaway registry to learn the inventory.
func RegisterMetrics(reg *obs.Registry) *PlatformMetrics {
	return &PlatformMetrics{
		QueueDepth: reg.Gauge("jobd_queue_depth",
			"Jobs waiting for their first dispatch."),
		Workers: reg.Gauge("jobd_workers",
			"Live workers in the pool."),
		DeadWorkers: reg.Gauge("jobd_workers_dead",
			"Workers marked dead with groups still accounted to them."),
		TenantQueued: reg.GaugeVec("jobd_tenant_jobs_queued",
			"Queued jobs per tenant.", "tenant"),
		TenantRunning: reg.GaugeVec("jobd_tenant_jobs_running",
			"Running jobs per tenant.", "tenant"),
		Jobs: reg.GaugeVec("jobd_jobs",
			"Jobs by lifecycle state.", "state"),
		Requeues: reg.Counter("jobd_group_requeues_total",
			"Groups requeued after a worker died."),
		ResumePoints: reg.Counter("jobd_resume_points_total",
			"Points dispatched with a resume checkpoint attached."),
		RecoveredJobs: reg.Counter("jobd_recovered_jobs",
			"Unfinished jobs re-queued from the journal at startup."),
		RecoveredPoints: reg.Counter("jobd_recovered_points",
			"Completed points restored from the journal at startup."),
		RecoveredCkpts: reg.Counter("jobd_recovered_checkpoints",
			"Resume checkpoints restored from the journal at startup."),
		Rejected: reg.Counter("jobd_admission_rejected_total",
			"Submissions refused by admission control."),
		TelemetrySnaps: reg.Counter("jobd_telemetry_snapshots_total",
			"Interval snapshots appended to job telemetry rings."),
		TelemetryDropped: reg.Counter("jobd_telemetry_dropped_total",
			"Snapshots lost to slow telemetry watchers (ring wrap-around)."),
		TelemetryClients: reg.Gauge("jobd_telemetry_clients",
			"Currently attached telemetry streams."),
		TraceSpans: reg.Counter("jobd_trace_spans_total",
			"Lifecycle spans appended to job trace logs."),
		TraceDropped: reg.Counter("jobd_trace_spans_dropped_total",
			"Trace spans evicted from bounded per-job span logs."),
		JournalTornTails: reg.Counter("jobd_journal_torn_tails_total",
			"Results-log tails truncated during recovery (torn or corrupt trailing records; the dropped points rerun)."),
		JournalCRCErrors: reg.Counter("jobd_journal_crc_errors_total",
			"Journal records that failed their crc32c integrity checksum during recovery."),
		JournalDegraded: reg.Counter("jobd_journal_degraded_total",
			"Other tolerated recovery blemishes: empty checkpoint files, temp-file leftovers from crashed renames."),
		QueueWait: reg.HistogramVec("jobd_queue_wait_seconds",
			"Submission to first group dispatch, per tenant.", nil, "tenant"),
		FirstResult: reg.HistogramVec("jobd_first_result_seconds",
			"First group dispatch to first point result, per tenant.", nil, "tenant"),
		JobDuration: reg.HistogramVec("jobd_job_duration_seconds",
			"Submission to terminal state, per tenant.", nil, "tenant"),
	}
}

// apply publishes one Metrics snapshot into the registry instruments.
// Counters use Set: the platform's own monotonic counters are the source,
// re-applying their absolute values is the race-free publication. Tenant
// gauge families are zeroed first so a tenant absent from this snapshot
// (all its jobs left the state) reads 0, not its last value.
func (pm *PlatformMetrics) apply(m Metrics) {
	pm.QueueDepth.Set(float64(m.QueueDepth))
	pm.Workers.Set(float64(m.Workers))
	pm.DeadWorkers.Set(float64(m.DeadWorkers))
	pm.TenantQueued.Zero()
	for t, n := range m.QueuedByTenant {
		pm.TenantQueued.With(t).Set(float64(n))
	}
	pm.TenantRunning.Zero()
	for t, n := range m.RunningByTenant {
		pm.TenantRunning.With(t).Set(float64(n))
	}
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		pm.Jobs.With(string(s)).Set(float64(m.JobsByState[s]))
	}
	pm.Requeues.Set(float64(m.Requeues))
	pm.ResumePoints.Set(float64(m.ResumePoints))
	pm.RecoveredJobs.Set(float64(m.RecoveredJobs))
	pm.RecoveredPoints.Set(float64(m.RecoveredPoints))
	pm.RecoveredCkpts.Set(float64(m.RecoveredCkpts))
	pm.Rejected.Set(float64(m.Rejected))
	pm.TelemetrySnaps.Set(float64(m.TelemetrySnaps))
	pm.TelemetryDropped.Set(float64(m.TelemetryDropped))
	pm.TelemetryClients.Set(float64(m.TelemetryClients))
	pm.TraceSpans.Set(float64(m.TraceSpans))
	pm.TraceDropped.Set(float64(m.TraceDropped))
	pm.JournalTornTails.Set(float64(m.JournalTornTails))
	pm.JournalCRCErrors.Set(float64(m.JournalCRCErrors))
	pm.JournalDegraded.Set(float64(m.JournalDegraded))
}
