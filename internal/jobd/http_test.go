package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// cluster starts the given coordinator with n TCP workers, registering a
// cleanup-ordered teardown — the real sharded service the platform
// schedules over, not a loopback stand-in. The caller wires hooks
// (OnWorkersChanged) before this, per the coordinator's contract.
func cluster(t *testing.T, coord *sweepd.Coordinator, n int) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go coord.Serve(ln)
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sweepd.Work(ctx, ln.Addr().String(), sweepd.WorkerOptions{
				Name: fmt.Sprintf("w%d", i), Parallelism: 2,
			})
		}(i)
	}
	t.Cleanup(func() {
		cancel()
		coord.Close()
		wg.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", coord.WorkerCount(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHTTPEndToEnd is the platform's acceptance drill: two tenants submit
// three jobs each over the HTTP API against a real coordinator with two
// TCP workers; every job completes and every result set is byte-identical
// to the plain local sweep of the same points.
func TestHTTPEndToEnd(t *testing.T) {
	coord := sweepd.NewCoordinator()
	p, err := New(Options{Pool: coord, Tenants: []Tenant{
		{Name: "alice", Token: "tok-a"},
		{Name: "bob", Token: "tok-b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	coord.OnWorkersChanged = p.Kick
	cluster(t, coord, 2)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	const instrs = 6000
	pts := wirePoints(t, "E2E", []int{8, 16}, []int{4, 8})

	// The uninterrupted local reference for that exact point set.
	sj, err := sweepd.JobFromWire(&sweepd.WireJob{Profile: mustProfile(t, "gzip"),
		Instructions: instrs, Points: reindex(pts)})
	if err != nil {
		t.Fatal(err)
	}
	runner := sweep.Runner{Workload: sj.Profile, Instructions: instrs,
		Traces: tracecache.New(tracecache.Config{})}
	want, err := runner.Run(context.Background(), sj.Points)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errc := make(chan error, 6)
	for _, tok := range []string{"tok-a", "tok-b"} {
		c := &Client{Server: srv.URL, Token: tok, HTTPClient: srv.Client()}
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(c *Client, who string, i int) {
				defer wg.Done()
				st, err := c.Submit(ctx, SubmitRequest{Workload: "gzip",
					Instructions: instrs, Points: pts})
				if err != nil {
					errc <- fmt.Errorf("%s job %d submit: %w", who, i, err)
					return
				}
				wrs := make([]*sweepd.WireResult, len(pts))
				state, err := c.Results(ctx, st.ID, func(wr *sweepd.WireResult) error {
					wrs[wr.Index] = wr
					return nil
				})
				if err != nil || state != StateDone {
					errc <- fmt.Errorf("%s job %d: state=%s err=%w", who, i, state, err)
					return
				}
				got, err := sweepResultsOf(sj, wrs)
				if err != nil {
					errc <- err
					return
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					errc <- err
					return
				}
				if string(gotJSON) != string(wantJSON) {
					errc <- fmt.Errorf("%s job %d results differ from the local sweep", who, i)
				}
			}(c, tok, i)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Both tenants' jobs all terminal, none lost.
	for _, tok := range []string{"tok-a", "tok-b"} {
		c := &Client{Server: srv.URL, Token: tok, HTTPClient: srv.Client()}
		jobs, err := c.List(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) != 3 {
			t.Fatalf("token %s sees %d jobs, want 3 (tenant scoping)", tok, len(jobs))
		}
		for _, j := range jobs {
			if j.State != StateDone || j.Completed != len(pts) {
				t.Errorf("job %s: state=%s completed=%d", j.ID, j.State, j.Completed)
			}
		}
	}
}

func mustProfile(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// reindex normalizes wire point indices to positions (what Submit does
// server-side) for building the local reference job.
func reindex(pts []sweepd.WirePoint) []sweepd.WirePoint {
	out := make([]sweepd.WirePoint, len(pts))
	for i, wp := range pts {
		wp.Index = i
		out[i] = wp
	}
	return out
}

// TestHTTPAuthAndAdmission: wrong tokens get 401; submissions beyond the
// queue and tenant caps get 429 with Retry-After, and the work that was
// admitted is unaffected.
func TestHTTPAuthAndAdmission(t *testing.T) {
	p, err := New(Options{Pool: StaticPool{}, MaxQueue: 2, TenantMaxInFlight: 1,
		Tenants: []Tenant{{Name: "alice", Token: "tok-a"}, {Name: "bob", Token: "tok-b"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	ctx := context.Background()
	pts := wirePoints(t, "ADM", []int{8}, []int{4})

	// Unknown and missing tokens are rejected before any platform state.
	for _, token := range []string{"wrong", ""} {
		c := &Client{Server: srv.URL, Token: token, HTTPClient: srv.Client()}
		_, err := c.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 1000, Points: pts})
		var se *StatusError
		if !errors.As(err, &se) || se.Code != http.StatusUnauthorized {
			t.Fatalf("token %q: err = %v, want 401", token, err)
		}
	}

	alice := &Client{Server: srv.URL, Token: "tok-a", HTTPClient: srv.Client()}
	bob := &Client{Server: srv.URL, Token: "tok-b", HTTPClient: srv.Client()}
	st, err := alice.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 1000, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	// Alice is at her per-tenant cap: 429, retryable.
	_, err = alice.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 1000, Points: pts})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests || !se.IsRetryable() {
		t.Fatalf("over-cap submit: err = %v, want retryable 429", err)
	}
	// Bob still gets in (admission is per-tenant), filling the queue.
	if _, err := bob.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 1000, Points: pts}); err != nil {
		t.Fatal(err)
	}
	// Alice's admitted job was untouched by her rejection: still queued,
	// cancellable, results streamable.
	got, err := alice.Status(ctx, st.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("admitted job after sibling rejection: state=%s err=%v", got.State, err)
	}
	if _, err := alice.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if state, err := alice.Results(ctx, st.ID, nil); err != nil || state != StateCanceled {
		t.Fatalf("canceled job stream: state=%s err=%v", state, err)
	}
	// Cross-tenant access 404s.
	if _, err := bob.Status(ctx, st.ID); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("cross-tenant status: err = %v, want 404", err)
	}
}

// TestHTTPMetricsAndHealth: the observability endpoints serve without auth
// and reflect platform state.
func TestHTTPMetricsAndHealth(t *testing.T) {
	p, err := New(Options{Pool: StaticPool{}, Tenants: []Tenant{{Name: "alice", Token: "tok-a"}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	if _, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "M", []int{8}, []int{4})}); err != nil {
		t.Fatal(err)
	}
	for path, want := range map[string]string{
		"/healthz": "ok",
		"/metrics": `jobd_tenant_jobs_queued{tenant="alice"} 1`,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Errorf("%s: status=%d body does not contain %q:\n%s", path, resp.StatusCode, want, body)
		}
	}
}
