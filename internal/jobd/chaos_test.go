package jobd

// The jobd half of the chaos suite (docs/ROBUSTNESS.md): seeded fault
// schedules against the journal and the HTTP door, each asserting the
// invariant the platform promises — results byte-identical to an
// uninterrupted run, no matter which durability or admission path the
// schedule breaks. The sweepd half (wire faults, hung workers) lives in
// internal/sweepd/chaos_test.go.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

// chaosReference runs the submitted points through the plain local
// runner and returns the canonical result JSON.
func chaosReference(t *testing.T, sj *sweepd.Job) string {
	t.Helper()
	runner := sweep.Runner{Workload: sj.Profile, Instructions: sj.Instructions,
		Traces: tracecache.New(tracecache.Config{})}
	want, err := runner.Run(context.Background(), sj.Points)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assembleJSON assembles a job's streamed results in point order and
// returns their JSON.
func assembleJSON(t *testing.T, sj *sweepd.Job, wrs []*sweepd.WireResult) string {
	t.Helper()
	got, err := sweepResultsOf(sj, wrs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// streamAll streams a job to completion, collecting results by index.
func streamAll(t *testing.T, p *Platform, tenant, id string, n int) []*sweepd.WireResult {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	wrs := make([]*sweepd.WireResult, n)
	state, errStr, err := p.StreamResults(ctx, tenant, id, func(wr *sweepd.WireResult) error {
		wrs[wr.Index] = wr
		return nil
	})
	if err != nil || state != StateDone || errStr != "" {
		t.Fatalf("job ended state=%s err=%q streamErr=%v, want done", state, errStr, err)
	}
	return wrs
}

// TestChaosTornJournalRestart: a seeded schedule tears every journal
// append from ordinal N onward — half-written records, the on-disk
// signature of dying mid-write — so the job completes in memory but its
// log is garbage past the first torn byte and its terminal marker never
// lands. A restarted platform must truncate the torn tail (counted, not
// fatal), requeue the job, rerun the dropped points, and produce results
// byte-identical to an uninterrupted run.
func TestChaosTornJournalRestart(t *testing.T) {
	seeds := []int64{11, 12}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run("seed"+string(rune('0'+seed%10)), func(t *testing.T) {
			dir := t.TempDir()
			pts := wirePoints(t, "TJ", []int{8, 16}, []int{4, 8})

			inj := faults.NewInjector(faults.Rule{
				Site:  faultJournalAppend,
				On:    2 + uint64(seed%3), // within the job's 4 result appends
				Count: faults.All,
				Err:   errTornAppend,
			})
			defer inj.Close()
			w1 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})
			p1, err := New(Options{Pool: StaticPool{w1}, JournalDir: dir, Faults: inj})
			if err != nil {
				t.Fatal(err)
			}
			st, err := p1.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 6000, Points: pts})
			if err != nil {
				t.Fatal(err)
			}
			streamAll(t, p1, "alice", st.ID, len(pts)) // completes from memory
			if inj.Fired(faultJournalAppend) == 0 {
				t.Fatal("schedule never fired: the journal was not damaged")
			}
			p1.Close()

			// The restarted platform sees the damage: torn tail truncated,
			// job requeued (its terminal marker was torn), dropped points
			// rerun, results byte-identical.
			p2, err := New(Options{Pool: StaticPool{sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})},
				JournalDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer p2.Close()
			m := p2.Snapshot()
			if m.RecoveredJobs != 1 || m.JournalTornTails == 0 {
				t.Fatalf("recovered jobs=%d tornTails=%d, want 1/>0", m.RecoveredJobs, m.JournalTornTails)
			}
			wrs := streamAll(t, p2, "alice", st.ID, len(pts))
			p2.mu.Lock()
			sj := p2.jobs[st.ID].sj
			p2.mu.Unlock()
			if got, want := assembleJSON(t, sj, wrs), chaosReference(t, sj); got != want {
				t.Fatalf("results after torn-journal recovery are not byte-identical\ngot:  %.300s\nwant: %.300s", got, want)
			}
		})
	}
}

// TestChaosRestartWithCheckpointFaults is the coordinator-restart
// schedule: the platform is killed abruptly mid-job while a seeded fault
// eats some of its checkpoint saves. The restart must recover the job,
// resume from whichever checkpoints did land, and finish byte-identical.
func TestChaosRestartWithCheckpointFaults(t *testing.T) {
	dir := t.TempDir()
	const instrs = 200_000
	pts := wirePoints(t, "CR", []int{8, 16}, []int{4, 8})

	// The first two checkpoint saves fail (tolerated, logged); later ones
	// land and carry the resume.
	inj := faults.NewInjector(faults.Rule{Site: faultJournalCkpt, On: 1, Count: 2})
	defer inj.Close()
	w1 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: 2000})
	p1, err := New(Options{Pool: StaticPool{w1}, JournalDir: dir, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p1.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: instrs, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, st.ID, "ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint persisted within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p1.Close() // abrupt: nothing a SIGKILL would not leave
	if inj.Fired(faultJournalCkpt) < 2 {
		t.Fatalf("checkpoint fault fired %d times, want 2", inj.Fired(faultJournalCkpt))
	}

	w2 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{CheckpointEvery: 2000})
	p2, err := New(Options{Pool: StaticPool{w2}, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if m := p2.Snapshot(); m.RecoveredJobs != 1 {
		t.Fatalf("recovered jobs=%d, want 1", m.RecoveredJobs)
	}
	wrs := streamAll(t, p2, "alice", st.ID, len(pts))
	if w2.ResumedCycles() == 0 {
		t.Error("no point resumed past cycle 0 despite surviving checkpoints")
	}
	p2.mu.Lock()
	sj := p2.jobs[st.ID].sj
	p2.mu.Unlock()
	if got, want := assembleJSON(t, sj, wrs), chaosReference(t, sj); got != want {
		t.Fatal("results after restart with checkpoint faults are not byte-identical")
	}
}

// TestChaosSubmit429Storm: the HTTP door refuses the first N submissions
// the way a saturated platform would (429 + Retry-After), and the
// client's retry policy must ride the storm out — honoring the server's
// advice per attempt — and the job must then run to byte-identical
// completion.
func TestChaosSubmit429Storm(t *testing.T) {
	storm := uint64(3)
	if testing.Short() {
		storm = 2
	}
	inj := faults.NewInjector(faults.Rule{Site: faultHTTPSubmit, On: 1, Count: storm})
	defer inj.Close()
	w := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})
	p, err := New(Options{Pool: StaticPool{w}, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	pts := wirePoints(t, "ST", []int{8, 16}, []int{4, 8})
	type try struct {
		attempt int
		delay   time.Duration
	}
	var tries []try
	c := &Client{Server: srv.URL, HTTPClient: srv.Client(), Retry: RetryPolicy{
		MaxAttempts: int(storm) + 2,
		Seed:        7,
		OnRetry: func(attempt int, err error, delay time.Duration) {
			tries = append(tries, try{attempt, delay})
			se := &StatusError{}
			if !errors.As(err, &se) || !se.IsRetryable() {
				t.Errorf("retry %d on non-retryable error %v", attempt, err)
			}
		},
	}}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: 6000, Points: pts})
	if err != nil {
		t.Fatalf("submission did not survive the 429 storm: %v", err)
	}
	if len(tries) != int(storm) {
		t.Fatalf("client retried %d times, want %d", len(tries), storm)
	}
	for _, tr := range tries {
		// The injected refusals advertise Retry-After: 1; the policy must
		// use the server's advice, not its own backoff.
		if tr.delay != time.Second {
			t.Errorf("attempt %d delayed %v, want the server-advertised 1s", tr.attempt, tr.delay)
		}
	}
	wrs := make([]*sweepd.WireResult, len(pts))
	state, err := c.Results(ctx, st.ID, func(wr *sweepd.WireResult) error {
		wrs[wr.Index] = wr
		return nil
	})
	if err != nil || state != StateDone {
		t.Fatalf("state=%s err=%v, want done", state, err)
	}
	p.mu.Lock()
	sj := p.jobs[st.ID].sj
	p.mu.Unlock()
	if got, want := assembleJSON(t, sj, wrs), chaosReference(t, sj); got != want {
		t.Fatal("results after the 429 storm are not byte-identical")
	}
}

// TestChaosCheckpointSavesAlwaysFail: graceful degradation — when every
// checkpoint persist fails, the platform must neither crash nor stall;
// it just loses resume state it never needed (no restart happens here)
// and the job completes byte-identical.
func TestChaosCheckpointSavesAlwaysFail(t *testing.T) {
	dir := t.TempDir()
	inj := faults.NewInjector(faults.Rule{Site: faultJournalCkpt, Count: faults.All})
	defer inj.Close()
	w := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{CheckpointEvery: 2000})
	p, err := New(Options{Pool: StaticPool{w}, JournalDir: dir, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pts := wirePoints(t, "CK", []int{8, 16}, []int{4, 8})
	st, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 50_000, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	wrs := streamAll(t, p, "alice", st.ID, len(pts))
	if inj.Fired(faultJournalCkpt) == 0 {
		t.Fatal("no checkpoint save was ever attempted: the schedule proved nothing")
	}
	p.mu.Lock()
	sj := p.jobs[st.ID].sj
	p.mu.Unlock()
	if got, want := assembleJSON(t, sj, wrs), chaosReference(t, sj); got != want {
		t.Fatal("results with failing checkpoint saves are not byte-identical")
	}
}
