package jobd

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweepd"
)

// snapsByPoint groups a telemetry stream's snapshots by job-wide point
// index (snap.Core), preserving arrival order within each point.
func snapsByPoint(snaps []core.IntervalSnapshot) map[int][]core.IntervalSnapshot {
	by := make(map[int][]core.IntervalSnapshot)
	for _, s := range snaps {
		by[s.Core] = append(by[s.Core], s)
	}
	return by
}

// verifyFullSequence checks that one client's stream carried every point's
// complete interval sequence and that each point's windows sum back to its
// final result exactly.
func verifyFullSequence(t *testing.T, who string, snaps []core.IntervalSnapshot, results []*sweepd.WireResult, cfgOf func(int) core.Result) {
	t.Helper()
	by := snapsByPoint(snaps)
	for idx := range results {
		ss := by[idx]
		if len(ss) == 0 {
			t.Fatalf("%s: point %d has no snapshots", who, idx)
		}
		var sum core.Result
		for i, s := range ss {
			if s.Seq != uint64(i) {
				t.Fatalf("%s: point %d snapshot %d has Seq %d (gap or reorder)", who, idx, i, s.Seq)
			}
			if i > 0 && s.StartCycle != ss[i-1].EndCycle {
				t.Fatalf("%s: point %d windows not contiguous at snapshot %d", who, idx, i)
			}
			s.Accumulate(&sum)
		}
		res := cfgOf(idx)
		last := ss[len(ss)-1]
		if !last.Final || ss[0].StartCycle != 0 || last.EndCycle != res.Cycles {
			t.Fatalf("%s: point %d windows span [%d,%d) final=%v, want [0,%d) final",
				who, idx, ss[0].StartCycle, last.EndCycle, last.Final, res.Cycles)
		}
		if !reflect.DeepEqual(sum.Counters, res.Counters) {
			t.Fatalf("%s: point %d accumulated counters differ from final result", who, idx)
		}
		if !reflect.DeepEqual(sum.ICache, res.ICache) || !reflect.DeepEqual(sum.DCache, res.DCache) {
			t.Fatalf("%s: point %d accumulated cache stats differ from final result", who, idx)
		}
	}
}

// TestHTTPTelemetryFanOut: two concurrent NDJSON clients watch one running
// job and each receives every point's full interval sequence; a third
// client attaching after completion replays the buffered ring and sees the
// same history. All sequences sum to results byte-identical to what the
// result stream reports.
func TestHTTPTelemetryFanOut(t *testing.T) {
	w1 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})
	w2 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{})
	p, err := New(Options{Pool: StaticPool{w1, w2}, TelemetryEvery: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	c := &Client{Server: srv.URL, HTTPClient: srv.Client()}

	const instrs = 6000
	pts := wirePoints(t, "TEL", []int{8, 16}, []int{4, 8})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, SubmitRequest{Workload: "gzip", Instructions: instrs, Points: pts})
	if err != nil {
		t.Fatal(err)
	}

	// Two watchers attach while the job runs (or replay the ring if it
	// finished first — the stream contract makes the race benign).
	var wg sync.WaitGroup
	streams := make([][]core.IntervalSnapshot, 2)
	states := make([]State, 2)
	errs := make([]error, 2)
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			states[i], errs[i] = c.Telemetry(ctx, st.ID, func(s core.IntervalSnapshot) error {
				streams[i] = append(streams[i], s)
				return nil
			})
		}(i)
	}
	wrs := make([]*sweepd.WireResult, len(pts))
	state, err := c.Results(ctx, st.ID, func(wr *sweepd.WireResult) error {
		wrs[wr.Index] = wr
		return nil
	})
	if err != nil || state != StateDone {
		t.Fatalf("results: state=%s err=%v", state, err)
	}
	wg.Wait()
	for i := range streams {
		if errs[i] != nil || states[i] != StateDone {
			t.Fatalf("watcher %d: state=%s err=%v", i, states[i], errs[i])
		}
	}

	sj, err := sweepd.JobFromWire(&sweepd.WireJob{Profile: mustProfile(t, "gzip"),
		Instructions: instrs, Points: reindex(pts)})
	if err != nil {
		t.Fatal(err)
	}
	resOf := func(idx int) core.Result {
		if wrs[idx] == nil || wrs[idx].Err != "" {
			t.Fatalf("point %d: missing or failed result", idx)
		}
		return wrs[idx].Res.Result(sj.Points[idx].Config)
	}
	for i, snaps := range streams {
		verifyFullSequence(t, fmt.Sprintf("watcher %d", i), snaps, wrs, resOf)
	}
	if !reflect.DeepEqual(streams[0], streams[1]) {
		t.Fatal("concurrent watchers saw different snapshot streams")
	}

	// Late joiner after the job is terminal: the whole run fits in the
	// default ring, so it replays the identical history.
	var late []core.IntervalSnapshot
	lateState, err := c.Telemetry(ctx, st.ID, func(s core.IntervalSnapshot) error {
		late = append(late, s)
		return nil
	})
	if err != nil || lateState != StateDone {
		t.Fatalf("late joiner: state=%s err=%v", lateState, err)
	}
	if !reflect.DeepEqual(late, streams[0]) {
		t.Fatal("late joiner's ring replay differs from the live stream")
	}

	if m := p.Snapshot(); m.TelemetrySnaps == 0 || m.TelemetryClients != 0 {
		t.Fatalf("metrics after streams: snaps=%d clients=%d", m.TelemetrySnaps, m.TelemetryClients)
	}
}

// TestTelemetrySlowClientDrops: a watcher stalled inside its callback loses
// exactly the snapshots the ring wrapped past — counted in the platform
// metrics — while a fast watcher on the same job receives every snapshot.
// The emitter (onTelemetry) never blocks on either.
func TestTelemetrySlowClientDrops(t *testing.T) {
	p, err := New(Options{Pool: StaticPool{}, TelemetryRing: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// No workers: the job stays queued and the test drives emissions by
	// hand, which makes the interleaving fully deterministic.
	st, err := p.Submit("default", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "SLOW", []int{8}, []int{4})})
	if err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	j := p.jobs[st.ID]
	p.mu.Unlock()
	emit := func(seq uint64) {
		p.onTelemetry(j, 0, core.IntervalSnapshot{Seq: seq,
			StartCycle: seq * 100, EndCycle: (seq + 1) * 100})
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(time.Millisecond)
		}
	}

	ctx := context.Background()
	var mu sync.Mutex
	var fast, slow []uint64
	gate := make(chan struct{})
	blocked := false
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.StreamTelemetry(ctx, "default", st.ID, func(s core.IntervalSnapshot) error {
			mu.Lock()
			fast = append(fast, s.Seq)
			mu.Unlock()
			return nil
		})
	}()
	go func() {
		defer wg.Done()
		p.StreamTelemetry(ctx, "default", st.ID, func(s core.IntervalSnapshot) error {
			mu.Lock()
			slow = append(slow, s.Seq)
			first := !blocked
			blocked = true
			mu.Unlock()
			if first {
				<-gate // stall mid-delivery; the engine must keep emitting
			}
			return nil
		})
	}()
	waitFor("both clients attached", func() bool { return p.Snapshot().TelemetryClients == 2 })

	emit(0)
	waitFor("both clients got snapshot 0", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fast) == 1 && len(slow) == 1
	})
	// Eight more while the slow client is stalled. The fast client is paced
	// to each one, proving delivery to it is unaffected; the ring (cap 4)
	// wraps past snapshots 1-4 for the stalled one.
	for seq := uint64(1); seq <= 8; seq++ {
		emit(seq)
		waitFor("fast client caught up", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return uint64(len(fast)) == seq+1
		})
	}
	close(gate)
	waitFor("slow client drained the ring", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(slow) == 5
	})
	if _, err := p.Cancel("default", st.ID); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if want := []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8}; !reflect.DeepEqual(fast, want) {
		t.Fatalf("fast client saw %v, want %v", fast, want)
	}
	if want := []uint64{0, 5, 6, 7, 8}; !reflect.DeepEqual(slow, want) {
		t.Fatalf("slow client saw %v, want %v (ring cap 4 wraps past 1-4)", slow, want)
	}
	m := p.Snapshot()
	if m.TelemetrySnaps != 9 || m.TelemetryDropped != 4 || m.TelemetryClients != 0 {
		t.Fatalf("metrics: snaps=%d dropped=%d clients=%d, want 9/4/0",
			m.TelemetrySnaps, m.TelemetryDropped, m.TelemetryClients)
	}
}
