// Go client for the job platform's HTTP front door. Used by the resim CLI
// (`resim jobs ...`) and the Session.SubmitRemote job handle.
package jobd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/sweepd"
)

// Client talks to one job service.
type Client struct {
	// Server is the service base URL, e.g. "http://coordinator:8080".
	Server string
	// Token is the tenant's bearer token (empty in auth-disabled mode).
	Token string
	// HTTPClient overrides http.DefaultClient (tests inject the
	// httptest server's client).
	HTTPClient *http.Client
	// Retry, when configured, makes the unary API calls (Submit, Status,
	// List, Cancel) retry 429s and transient network errors with jittered
	// exponential backoff, honoring the server's Retry-After advice. The
	// zero value keeps the historical single-shot behavior. Streaming
	// calls never retry — reconnecting a half-consumed stream is the
	// caller's decision.
	Retry RetryPolicy
}

// RetryPolicy configures the client's retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per call; 0 or 1 disables
	// retries.
	MaxAttempts int
	// Base and Max bound the jittered exponential backoff between tries
	// (defaults 250ms and 5s). A 429 carrying Retry-After overrides the
	// computed delay with the server's advice.
	Base time.Duration
	Max  time.Duration
	// Seed seeds the backoff jitter (see faults.NewBackoff); retry
	// schedules are deterministic per (Seed, attempt).
	Seed int64
	// OnRetry, when non-nil, observes every scheduled retry.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After advice in seconds (0 when
	// the response carried none).
	RetryAfter int
}

// Error renders the status code and the server's error message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("jobd: server returned %d: %s", e.Code, e.Msg)
}

// IsRetryable reports whether the request was refused by admission
// control (HTTP 429) and should be resubmitted after a backoff.
func (e *StatusError) IsRetryable() bool { return e.Code == http.StatusTooManyRequests }

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one API request and decodes a JSON response into out,
// retrying per c.Retry. Request bodies are marshaled once and replayed
// from memory on each attempt, so retrying a POST is safe at this layer;
// whether it is safe end-to-end is the policy's call (Submit retries only
// 429s and connection-refused, where the server provably did no work).
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var data []byte
	if body != nil {
		var err error
		data, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	attempts := c.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	bo := faults.NewBackoff(c.Retry.Base, c.Retry.Max, c.Retry.Seed)
	if c.Retry.Base <= 0 {
		bo = faults.NewBackoff(250*time.Millisecond, 5*time.Second, c.Retry.Seed)
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		lastErr = c.doOnce(ctx, method, path, data, body != nil, out)
		if lastErr == nil || attempt >= attempts {
			return lastErr
		}
		delay, ok := retryDelay(lastErr, method, bo)
		if !ok {
			return lastErr
		}
		if f := c.Retry.OnRetry; f != nil {
			f(attempt, lastErr, delay)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		case <-t.C:
		}
	}
}

// doOnce issues a single attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Server+path, rd)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// retryDelay classifies err and, when retryable for this method, returns
// the delay before the next attempt. 429s are always retryable — the
// server refused the work whole — and the server's Retry-After advice
// overrides the backoff. Connection-refused is always retryable (nothing
// reached the server). Other transport errors — resets, unexpected EOFs,
// timeouts — may have landed on the server, so they retry only for
// idempotent methods.
func retryDelay(err error, method string, bo *faults.Backoff) (time.Duration, bool) {
	var se *StatusError
	if errors.As(err, &se) {
		if !se.IsRetryable() {
			return 0, false
		}
		if se.RetryAfter > 0 {
			return time.Duration(se.RetryAfter) * time.Second, true
		}
		return bo.Next(), true
	}
	if errors.Is(err, syscall.ECONNREFUSED) {
		return bo.Next(), true
	}
	idempotent := method == http.MethodGet || method == http.MethodDelete || method == http.MethodHead
	if !idempotent {
		return 0, false
	}
	var ne net.Error
	switch {
	case errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.EOF),
		errors.As(err, &ne) && ne.Timeout():
		return bo.Next(), true
	}
	return 0, false
}

func apiError(resp *http.Response) error {
	var eb errorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(data, &eb) != nil || eb.Error == "" {
		eb.Error = string(bytes.TrimSpace(data))
	}
	ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
	return &StatusError{Code: resp.StatusCode, Msg: eb.Error, RetryAfter: ra}
}

// Submit submits a job, returning its acknowledged (durable) status.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Status fetches a job's status with per-point progress.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches the tenant's jobs, oldest first.
func (c *Client) List(ctx context.Context) ([]JobStatus, error) {
	var jobs []JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &jobs)
	return jobs, err
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Results follows the job's NDJSON result stream, calling fn per completed
// point in completion order, and returns the job's terminal state. It
// blocks until the job finishes (cancel via ctx). A stream that ends
// without the terminal line reports an error — the caller cannot know the
// job finished.
func (c *Client) Results(ctx context.Context, id string, fn func(*sweepd.WireResult) error) (State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+"/v1/jobs/"+id+"/results", nil)
	if err != nil {
		return "", err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var line struct {
			Result *sweepd.WireResult `json:"result"`
			Done   bool               `json:"done"`
			State  State              `json:"state"`
			Err    string             `json:"err"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return "", fmt.Errorf("jobd: corrupt stream line: %w", err)
		}
		switch {
		case line.Result != nil:
			if fn != nil {
				if err := fn(line.Result); err != nil {
					return "", err
				}
			}
		case line.Done:
			// A failure reason is an error; a cancellation note is just
			// color on a state the caller inspects anyway.
			if line.State == StateFailed && line.Err != "" {
				return line.State, fmt.Errorf("jobd: job %s failed: %s", id, line.Err)
			}
			return line.State, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("jobd: result stream for %s ended without a terminal line", id)
}

// Telemetry follows the job's NDJSON telemetry stream, calling fn per live
// interval snapshot, and returns the job's terminal state. A client
// attaching mid-job first replays the server's buffered snapshot ring, then
// follows live until the job finishes (cancel via ctx). Snapshots the
// server's ring wrapped past while this client was slow are simply absent
// from the stream; Seq gaps within one point reveal the loss.
func (c *Client) Telemetry(ctx context.Context, id string, fn func(core.IntervalSnapshot) error) (State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+"/v1/jobs/"+id+"/telemetry", nil)
	if err != nil {
		return "", err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var line struct {
			Telemetry *core.IntervalSnapshot `json:"telemetry"`
			Done      bool                   `json:"done"`
			State     State                  `json:"state"`
			Err       string                 `json:"err"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return "", fmt.Errorf("jobd: corrupt telemetry line: %w", err)
		}
		switch {
		case line.Telemetry != nil:
			if fn != nil {
				if err := fn(*line.Telemetry); err != nil {
					return "", err
				}
			}
		case line.Done:
			if line.State == StateFailed && line.Err != "" {
				return line.State, fmt.Errorf("jobd: job %s failed: %s", id, line.Err)
			}
			return line.State, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("jobd: telemetry stream for %s ended without a terminal line", id)
}

// Trace follows the job's NDJSON lifecycle-trace stream, calling fn per
// recorded span, and returns the job's terminal state. A client attaching
// mid-job first replays the server's buffered span log, then follows live
// until the job finishes (cancel via ctx). Spans the bounded log evicted
// before this client attached are simply absent; Seq gaps reveal the loss.
func (c *Client) Trace(ctx context.Context, id string, fn func(TraceSpan) error) (State, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Server+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return "", err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return "", apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		var line struct {
			Span  *TraceSpan `json:"span"`
			Done  bool       `json:"done"`
			State State      `json:"state"`
			Err   string     `json:"err"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return "", fmt.Errorf("jobd: corrupt trace line: %w", err)
		}
		switch {
		case line.Span != nil:
			if fn != nil {
				if err := fn(*line.Span); err != nil {
					return "", err
				}
			}
		case line.Done:
			if line.State == StateFailed && line.Err != "" {
				return line.State, fmt.Errorf("jobd: job %s failed: %s", id, line.Err)
			}
			return line.State, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("jobd: trace stream for %s ended without a terminal line", id)
}
