package jobd

// Recovery edge cases for the journal's tolerant reader: every blemish a
// crash can leave on disk — a torn final line, a corrupted record, an
// empty checkpoint, a temp-file leftover from an interrupted rename —
// must be tolerated (counted and logged, never fatal) and must leave a
// journal that recovers the job correctly.

import (
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sweepd"
)

// seedJournal writes a minimal valid job journal — spec plus n result
// records — and returns the journal and the job id.
func seedJournal(t *testing.T, dir string, n int) (*journal, string) {
	t.Helper()
	jn, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	pts := wirePoints(t, "J", []int{8}, []int{4, 8})
	const id = "job-1"
	err = jn.writeSpec(&specRecord{ID: id, Tenant: "alice", Seq: 1,
		Job: &sweepd.WireJob{Profile: mustProfile(t, "gzip"), Instructions: 6000, Points: pts}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := jn.appendLine(id, resultLine{Result: &sweepd.WireResult{Index: i}}); err != nil {
			t.Fatal(err)
		}
	}
	return jn, id
}

func resultsFile(dir, id string) string {
	return filepath.Join(dir, id, "results.ndjson")
}

func TestRecoveryTruncatedLastLine(t *testing.T) {
	dir := t.TempDir()
	_, id := seedJournal(t, dir, 2)

	// Tear the last record in half — the crash-mid-append signature.
	file := resultsFile(dir, id)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := data[:len(data)-len(last)-1+len(last)/2]
	if err := os.WriteFile(file, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	jn := &journal{dir: dir}
	rec, err := jn.loadJob(id)
	if err != nil {
		t.Fatalf("torn tail was fatal: %v", err)
	}
	if len(rec.results) != 1 || rec.results[0].Index != 0 {
		t.Fatalf("recovered %d results, want exactly the 1 whole record", len(rec.results))
	}
	if jn.tornTails != 1 {
		t.Fatalf("tornTails = %d, want 1", jn.tornTails)
	}
	// The file was truncated back to the last good byte, so future
	// appends extend a consistent log.
	after, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(torn) {
		t.Fatalf("file not truncated: %d bytes, had %d torn", len(after), len(torn))
	}
	if jn2 := (&journal{dir: dir}); true {
		rec2, err := jn2.loadJob(id)
		if err != nil || len(rec2.results) != 1 || jn2.tornTails != 0 {
			t.Fatalf("second load after truncation: results=%d tornTails=%d err=%v, want 1/0/nil",
				len(rec2.results), jn2.tornTails, err)
		}
	}
}

func TestRecoveryCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	_, id := seedJournal(t, dir, 3)

	// Flip payload bytes inside the second record without touching its
	// CRC: a whole line whose checksum no longer matches — silent
	// corruption, not a torn write.
	file := resultsFile(dir, id)
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(data), "\n", 3)
	var env journalLine
	if err := json.Unmarshal([]byte(lines[1]), &env); err != nil {
		t.Fatal(err)
	}
	env.Line = []byte(strings.Replace(string(env.Line), `"index":1`, `"index":9`, 1))
	if crc32.Checksum(env.Line, crcTable) == env.CRC {
		t.Fatal("corruption did not change the payload")
	}
	bad, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	doctored := lines[0] + "\n" + string(bad) + "\n" + lines[2]
	if err := os.WriteFile(file, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}

	jn := &journal{dir: dir}
	rec, err := jn.loadJob(id)
	if err != nil {
		t.Fatalf("corrupt record was fatal: %v", err)
	}
	// Everything before the corrupt record stands; it and everything
	// after are dropped for deterministic rerun.
	if len(rec.results) != 1 {
		t.Fatalf("recovered %d results, want 1 (stop at the corrupt record)", len(rec.results))
	}
	if jn.crcErrors != 1 || jn.tornTails != 1 {
		t.Fatalf("crcErrors=%d tornTails=%d, want 1/1", jn.crcErrors, jn.tornTails)
	}
}

func TestRecoveryEmptyCheckpoint(t *testing.T) {
	dir := t.TempDir()
	jn, id := seedJournal(t, dir, 0)
	if err := jn.saveCheckpoint(id, 0, []byte("real-state")); err != nil {
		t.Fatal(err)
	}
	// An empty ckpt/<idx> — created but never filled.
	if err := os.WriteFile(filepath.Join(dir, id, "ckpt", "1"), nil, 0o644); err != nil {
		t.Fatal(err)
	}

	jn2 := &journal{dir: dir}
	rec, err := jn2.loadJob(id)
	if err != nil {
		t.Fatalf("empty checkpoint was fatal: %v", err)
	}
	if string(rec.ckpts[0]) != "real-state" {
		t.Fatal("the whole checkpoint was lost alongside the empty one")
	}
	if _, ok := rec.ckpts[1]; ok {
		t.Fatal("an empty checkpoint was handed to the engine")
	}
	if jn2.degraded != 1 {
		t.Fatalf("degraded = %d, want 1 (the empty checkpoint)", jn2.degraded)
	}
}

func TestRecoveryTempFileLeftovers(t *testing.T) {
	dir := t.TempDir()
	_, id := seedJournal(t, dir, 1)
	// Leftovers of atomic renames that never landed, in both the job dir
	// (spec rewrite) and the checkpoint dir.
	leftover := filepath.Join(dir, id, ".tmp-12345")
	if err := os.WriteFile(leftover, []byte("half a spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	ckdir := filepath.Join(dir, id, "ckpt")
	if err := os.MkdirAll(ckdir, 0o755); err != nil {
		t.Fatal(err)
	}
	ckLeftover := filepath.Join(ckdir, ".tmp-67890")
	if err := os.WriteFile(ckLeftover, []byte("half a ckpt"), 0o644); err != nil {
		t.Fatal(err)
	}

	jn := &journal{dir: dir}
	rec, err := jn.loadJob(id)
	if err != nil {
		t.Fatalf("temp leftovers were fatal: %v", err)
	}
	if len(rec.results) != 1 {
		t.Fatalf("recovered %d results, want 1", len(rec.results))
	}
	if jn.degraded != 2 {
		t.Fatalf("degraded = %d, want 2 (one leftover per directory)", jn.degraded)
	}
	for _, f := range []string{leftover, ckLeftover} {
		if _, err := os.Stat(f); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("leftover %s survived recovery", f)
		}
	}
}

// TestRecoveryLegacyPlainLines: journals written before the integrity
// envelope existed carry bare resultLine records; they must still decode.
func TestRecoveryLegacyPlainLines(t *testing.T) {
	dir := t.TempDir()
	_, id := seedJournal(t, dir, 0)
	var plain []byte
	for _, line := range []resultLine{
		{Result: &sweepd.WireResult{Index: 0}},
		{Terminal: StateDone},
	} {
		data, err := json.Marshal(line)
		if err != nil {
			t.Fatal(err)
		}
		plain = append(plain, data...)
		plain = append(plain, '\n')
	}
	if err := os.WriteFile(resultsFile(dir, id), plain, 0o644); err != nil {
		t.Fatal(err)
	}

	jn := &journal{dir: dir}
	rec, err := jn.loadJob(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.results) != 1 || rec.terminal != StateDone {
		t.Fatalf("legacy journal decoded results=%d terminal=%q, want 1/done", len(rec.results), rec.terminal)
	}
	if jn.tornTails != 0 || jn.crcErrors != 0 || jn.degraded != 0 {
		t.Fatalf("legacy journal counted as damage: torn=%d crc=%d degraded=%d",
			jn.tornTails, jn.crcErrors, jn.degraded)
	}
}

// TestRetryAfterDerivedFromLoad: admission rejections carry Retry-After
// advice derived from live platform state — deeper queue backlogs and
// busier tenants advise longer waits — instead of the historical
// constant 1.
func TestRetryAfterDerivedFromLoad(t *testing.T) {
	// Queue-full: with MaxQueue 4 fully backed up, the advice scales with
	// depth: 1 + 4*depth/MaxQueue = 5.
	pool := &gatedPool{} // empty: nothing dispatches, everything queues
	p, err := New(Options{Pool: pool, MaxQueue: 4, TenantMaxInFlight: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pts := wirePoints(t, "RA", []int{8}, []int{4})
	req := SubmitRequest{Workload: "gzip", Instructions: 6000, Points: pts}
	for i := 0; i < 4; i++ {
		if _, err := p.Submit("alice", req); err != nil {
			t.Fatal(err)
		}
	}
	_, err = p.Submit("alice", req)
	var ra *RetryAfterError
	if !errors.As(err, &ra) || !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want a RetryAfterError wrapping ErrQueueFull", err)
	}
	if ra.Seconds != 5 {
		t.Fatalf("queue-full Retry-After = %ds, want 5 (1 + 4*4/4)", ra.Seconds)
	}

	// Tenant-busy: a tenant at its in-flight cap gets advice scaling with
	// its own backlog: 1 + queued + running = 3.
	p2, err := New(Options{Pool: &gatedPool{}, MaxQueue: 100, TenantMaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := 0; i < 2; i++ {
		if _, err := p2.Submit("bob", req); err != nil {
			t.Fatal(err)
		}
	}
	_, err = p2.Submit("bob", req)
	if !errors.As(err, &ra) || !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("err = %v, want a RetryAfterError wrapping ErrTenantBusy", err)
	}
	if ra.Seconds != 3 {
		t.Fatalf("tenant-busy Retry-After = %ds, want 3 (1 + 2 queued + 0 running)", ra.Seconds)
	}
}
