// Job lifecycle tracing: where did job J spend its time? Every job carries
// a bounded span log — one TraceSpan per lifecycle event (submit, journal,
// admit, dispatch with worker and group attribution, resume past a
// checkpointed cycle, checkpoint receipt, first result, per-point
// completion, requeue on worker death, terminal) recorded under the
// platform lock at the moment the event happens, with the elapsed time
// since submission stamped on each.
//
// Traces answer the latency question telemetry cannot: telemetry
// (telemetry.go) is the engines' view — simulated-cycle windows — while
// traces are the platform's view — wall-clock scheduling and attribution.
// Like telemetry they are ephemeral: never journaled, bounded per job
// (oldest spans drop when the log wraps, counted in Metrics.TraceDropped),
// and a recovered job's trace restarts at its "recovered" span. Watchers
// stream them via StreamTrace / GET /v1/jobs/{id}/trace with the same
// catch-up-then-follow contract as results and telemetry.
package jobd

import (
	"context"
	"encoding/json"
	"time"
)

// Span event names, in rough lifecycle order. A span's Event is always one
// of these; docs/OBSERVABILITY.md documents the schema.
const (
	SpanSubmit      = "submit"       // job validated, ID assigned
	SpanJournal     = "journal"      // submission persisted (journaled platforms)
	SpanAdmit       = "admit"        // past admission control, queued
	SpanRecovered   = "recovered"    // re-queued from the journal after a restart
	SpanDispatch    = "dispatch"     // group assigned to a worker
	SpanResume      = "resume"       // point dispatched with a checkpoint to resume from
	SpanCheckpoint  = "checkpoint"   // first resume checkpoint received for a point
	SpanFirstResult = "first_result" // first point result landed
	SpanPointDone   = "point_done"   // one point completed
	SpanRequeue     = "requeue"      // worker died; group's remainder back in queue
	SpanComplete    = "complete"     // terminal state reached
)

// DefaultTraceSpans is the per-job span log capacity when
// Options.TraceSpans is zero. A job's span count scales with points ×
// requeues, not with runtime, so 512 holds the full history of anything
// but a pathological requeue storm.
const DefaultTraceSpans = 512

// TraceSpan is one recorded lifecycle event of a job.
type TraceSpan struct {
	// Seq numbers the job's spans from 1; a stream whose first span has
	// Seq > 1 lost its head to the bounded log.
	Seq uint64 `json:"seq"`
	// Time is the event's wall-clock instant; ElapsedMS is the same
	// instant as milliseconds since submission (duration-friendly).
	Time      time.Time `json:"time"`
	ElapsedMS float64   `json:"elapsed_ms"`
	// Event is one of the Span* constants.
	Event string `json:"event"`
	// State is the job state after the event, on events that change it.
	State State `json:"state,omitempty"`
	// Point is the design-point index the event concerns, -1 for
	// job-scoped events.
	Point int `json:"point"`
	// Group is the trace-key group ID on dispatch/requeue events.
	Group string `json:"group,omitempty"`
	// Worker attributes the event to a worker (dispatch, point_done,
	// requeue).
	Worker string `json:"worker,omitempty"`
	// Points is the number of points the event covers (dispatch: points in
	// the assignment; requeue: points left unfinished).
	Points int `json:"points,omitempty"`
	// Cycle is the engine cycle a resume span restarts past (>0 proves the
	// point did not restart from scratch).
	Cycle uint64 `json:"cycle,omitempty"`
	// Detail is event-specific color: error strings, checkpoint sizes.
	Detail string `json:"detail,omitempty"`
}

// traceSpans returns the effective per-job span log capacity.
func (p *Platform) traceSpans() int {
	if p.opts.TraceSpans > 0 {
		return p.opts.TraceSpans
	}
	return DefaultTraceSpans
}

// spanLocked stamps and appends one span to the job's log, evicting the
// oldest past the cap, and wakes stream waiters. Callers hold p.mu.
func (p *Platform) spanLocked(j *job, s TraceSpan) {
	now := time.Now()
	j.spanSeq++
	s.Seq = j.spanSeq
	s.Time = now
	s.ElapsedMS = float64(now.Sub(j.submitted)) / float64(time.Millisecond)
	j.spans = append(j.spans, s)
	if over := len(j.spans) - p.traceSpans(); over > 0 {
		j.spans = append(j.spans[:0], j.spans[over:]...)
		p.traceDropped += uint64(over)
	}
	p.traceSpansTotal++
	p.broadcastLocked(j)
}

// checkpointCycles extracts the checkpointed major-cycle count from a
// serialized core.Checkpoint without decoding the full engine state.
func checkpointCycles(data []byte) uint64 {
	var v struct {
		Counters struct {
			Cycles uint64
		} `json:"counters"`
	}
	if json.Unmarshal(data, &v) != nil {
		return 0
	}
	return v.Counters.Cycles
}

// StreamTrace calls fn for every lifecycle span the job records, starting
// from the oldest span still buffered (a late joiner replays the log, then
// follows live), until the job reaches a terminal state (which it returns
// with the job's error string). fn runs without the platform lock; its
// error aborts the stream. Spans the bounded log evicted before this
// client read them are absent; Seq gaps reveal the loss.
func (p *Platform) StreamTrace(ctx context.Context, tenant, id string, fn func(TraceSpan) error) (State, string, error) {
	p.mu.Lock()
	j := p.lookupLocked(tenant, id)
	if j == nil {
		p.mu.Unlock()
		return "", "", ErrUnknownJob
	}
	next := j.spanSeq - uint64(len(j.spans))
	p.mu.Unlock()
	for {
		p.mu.Lock()
		start := j.spanSeq - uint64(len(j.spans))
		if next < start {
			next = start
		}
		batch := append([]TraceSpan(nil), j.spans[next-start:]...)
		next = j.spanSeq
		state, errStr := j.state, j.err
		change := j.change
		p.mu.Unlock()
		for _, s := range batch {
			if err := fn(s); err != nil {
				return state, errStr, err
			}
		}
		// state and the span log were snapshotted under one lock: the
		// terminal span records before the state flips, so a terminal state
		// means the batch above ended with it.
		if state.Terminal() {
			return state, errStr, nil
		}
		select {
		case <-ctx.Done():
			return state, errStr, ctx.Err()
		case <-p.ctx.Done():
			return state, errStr, ErrClosed
		case <-change:
		}
	}
}
