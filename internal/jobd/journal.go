// Disk journal for the job platform. Layout, one directory per job:
//
//	DIR/<id>/spec.json      the submission (atomic write, then the job is durable)
//	DIR/<id>/results.ndjson one line per completed point, plus a terminal line
//	DIR/<id>/ckpt/<index>   latest serialized checkpoint per unfinished point
//
// Everything is written crash-first: the spec and checkpoints go through
// temp-file + rename (a reader sees the old or the new bytes, never a
// torn file), and the results log carries a per-record integrity envelope
// — each line is {"crc": <crc32c>, "line": <record>} — with a tolerant
// reader: recovery verifies every checksum, stops at the first torn or
// corrupt record, truncates the file back to the last good byte (counted
// and logged, never fatal) and deterministically reruns whatever was
// dropped. fsync is opt-in (journal.sync, resimd -journal-sync): the
// default durability target is process death, the failure mode the
// platform actually recovers from; sync mode additionally flushes every
// append and rename for power-loss durability at a latency cost.
package jobd

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/sweepd"
)

// Fault-injection site keys for the journal and the HTTP door (see
// internal/faults and docs/ROBUSTNESS.md).
const (
	faultJournalAppend = "jobd.journal.append"
	faultJournalSpec   = "jobd.journal.spec"
	faultJournalCkpt   = "jobd.journal.ckpt"
	faultHTTPSubmit    = "jobd.http.submit"
)

// errTornAppend, injected at the append site, makes appendLine write half
// the record and fail without repair — the on-disk signature of a process
// dying mid-append.
var errTornAppend = errors.New("jobd: injected torn append")

// crcTable is the Castagnoli polynomial every journal record is
// checksummed with.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// specRecord is the journaled form of one submission.
type specRecord struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Priority  int             `json:"priority,omitempty"`
	Seq       uint64          `json:"seq"`
	Submitted time.Time       `json:"submitted"`
	Job       *sweepd.WireJob `json:"job"`
}

// resultLine is one line of results.ndjson: either a completed point or the
// job's terminal marker.
type resultLine struct {
	Result   *sweepd.WireResult `json:"result,omitempty"`
	Terminal State              `json:"terminal,omitempty"`
	Err      string             `json:"err,omitempty"`
}

// journalLine is the integrity envelope around every results.ndjson
// record: Line carries the encoded resultLine verbatim and CRC its
// crc32-Castagnoli checksum, so recovery can tell a whole record from a
// torn or silently corrupted one. Plain pre-envelope lines still decode
// (legacy journals recover unchanged).
type journalLine struct {
	CRC  uint32          `json:"crc"`
	Line json.RawMessage `json:"line"`
}

// recoveredJob is one job replayed from disk.
type recoveredJob struct {
	spec        *specRecord
	results     []*sweepd.WireResult
	terminal    State
	terminalErr string
	ckpts       map[int][]byte
}

type journal struct {
	dir string
	// sync makes every append and atomic rename fsync before reporting
	// success (Options.JournalSync / resimd -journal-sync).
	sync bool
	// inj, when non-nil, arms the journal's fault-injection sites.
	inj *faults.Injector
	// log, when non-nil, receives one preformatted line per tolerated
	// recovery blemish.
	log func(line string)

	// Recovery degradation tallies, written while load replays the
	// directory (single-threaded, before the platform serves) and read by
	// Platform.Snapshot afterwards.
	tornTails int // results.ndjson tails truncated (torn or corrupt record)
	crcErrors int // records whose integrity envelope failed its checksum
	degraded  int // other tolerated blemishes: empty checkpoints, temp-file leftovers
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobd: open journal: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (jn *journal) logf(line string) {
	if jn.log != nil {
		jn.log(line)
	}
}

func (jn *journal) jobDir(id string) string { return filepath.Join(jn.dir, id) }

// atomicWrite writes path via a temp file in the same directory + rename.
// With sync, the temp file is flushed before the rename and the directory
// after it, so the replacement survives power loss, not just process death.
func atomicWrite(path string, data []byte, sync bool) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return err
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if sync {
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			d.Sync()
			d.Close()
		}
	}
	return nil
}

// writeSpec makes a submission durable. Once it returns, a restart
// recovers the job.
func (jn *journal) writeSpec(rec *specRecord) error {
	dir := jn.jobDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := jn.inj.At(faultJournalSpec); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "spec.json"), data, jn.sync)
}

// appendLine appends one result or terminal line to the job's log,
// wrapped in the CRC integrity envelope.
func (jn *journal) appendLine(id string, line resultLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	env, err := json.Marshal(journalLine{CRC: crc32.Checksum(data, crcTable), Line: data})
	if err != nil {
		return err
	}
	env = append(env, '\n')
	f, err := os.OpenFile(filepath.Join(jn.jobDir(id), "results.ndjson"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if ierr := jn.inj.At(faultJournalAppend); ierr != nil {
		// An injected torn append models the process dying mid-write: half
		// the record lands and nothing repairs it — recovery's torn-tail
		// truncation is what cleans this up.
		if errors.Is(ierr, errTornAppend) {
			f.Write(env[:len(env)/2])
		}
		f.Close()
		return ierr
	}
	_, werr := f.Write(env)
	if werr == nil && jn.sync {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// saveCheckpoint persists a point's latest checkpoint, atomically
// replacing any older one.
func (jn *journal) saveCheckpoint(id string, index int, data []byte) error {
	dir := filepath.Join(jn.jobDir(id), "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := jn.inj.At(faultJournalCkpt); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, strconv.Itoa(index)), data, jn.sync)
}

// dropCheckpoint removes a point's persisted checkpoint (its result is
// durable, the resume state is dead weight). Best-effort.
func (jn *journal) dropCheckpoint(id string, index int) {
	os.Remove(filepath.Join(jn.jobDir(id), "ckpt", strconv.Itoa(index)))
}

// clearCheckpoints removes a terminal job's checkpoint directory.
func (jn *journal) clearCheckpoints(id string) {
	os.RemoveAll(filepath.Join(jn.jobDir(id), "ckpt"))
}

// load replays every job directory. Unreadable entries are skipped, never
// fatal: one corrupt job must not keep the service from coming back up.
func (jn *journal) load() ([]*recoveredJob, error) {
	entries, err := os.ReadDir(jn.dir)
	if err != nil {
		return nil, fmt.Errorf("jobd: read journal: %w", err)
	}
	var out []*recoveredJob
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := jn.loadJob(e.Name())
		if err != nil {
			// Torn spec (crash mid-submit before the rename landed) or
			// hand-damaged directory: the submission was never acknowledged
			// durable, skipping it breaks no promise.
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

func (jn *journal) loadJob(id string) (*recoveredJob, error) {
	dir := jn.jobDir(id)
	data, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	spec := &specRecord{}
	if err := json.Unmarshal(data, spec); err != nil {
		return nil, fmt.Errorf("jobd: job %s: corrupt spec: %w", id, err)
	}
	if spec.ID != id || spec.Job == nil {
		return nil, fmt.Errorf("jobd: job %s: spec does not match its directory", id)
	}
	rec := &recoveredJob{spec: spec, ckpts: make(map[int][]byte)}

	// Temp-file leftovers from atomic renames that never landed (crash
	// between create and rename) are invisible to readers but accumulate
	// forever if never collected; sweep them here, counted.
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				jn.degraded++
				jn.logf(sweepd.KV("jobd.journal_degraded", "job", id, "reason", "tmp_leftover", "name", e.Name()))
				os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}

	// Results log: verify every record's integrity envelope and stop at
	// the first torn or corrupt one, truncating the file back to the last
	// good byte so future appends extend a consistent log. Everything
	// before the cut stands; everything after reruns deterministically.
	file := filepath.Join(dir, "results.ndjson")
	if data, err := os.ReadFile(file); err == nil {
		good := 0
		for good < len(data) {
			raw := data[good:]
			next := len(data)
			if nl := bytes.IndexByte(raw, '\n'); nl >= 0 {
				raw = raw[:nl]
				next = good + nl + 1
			}
			line, ok := jn.decodeResultLine(id, raw)
			if !ok {
				break
			}
			switch {
			case line.Result != nil:
				rec.results = append(rec.results, line.Result)
			case line.Terminal != "":
				rec.terminal = line.Terminal
				rec.terminalErr = line.Err
			}
			good = next
		}
		if good < len(data) {
			jn.tornTails++
			jn.logf(sweepd.KV("jobd.journal_torn_tail", "job", id,
				"kept_bytes", good, "dropped_bytes", len(data)-good))
			os.Truncate(file, int64(good))
		}
	}

	// Checkpoints only matter for non-terminal jobs; their writes are
	// atomic so any present file is whole. Anything else in the directory
	// — rename leftovers, an empty or foreign file — is cleaned or
	// skipped, counted, never fatal: the point just runs from scratch.
	if rec.terminal == "" {
		ckdir := filepath.Join(dir, "ckpt")
		if ents, err := os.ReadDir(ckdir); err == nil {
			for _, ce := range ents {
				idx, err := strconv.Atoi(ce.Name())
				if err != nil {
					jn.degraded++
					jn.logf(sweepd.KV("jobd.journal_degraded", "job", id, "reason", "foreign_ckpt", "name", ce.Name()))
					if strings.HasPrefix(ce.Name(), ".tmp-") {
						os.Remove(filepath.Join(ckdir, ce.Name()))
					}
					continue
				}
				data, err := os.ReadFile(filepath.Join(ckdir, ce.Name()))
				if err != nil {
					continue
				}
				if len(data) == 0 {
					jn.degraded++
					jn.logf(sweepd.KV("jobd.journal_degraded", "job", id, "reason", "empty_ckpt", "point", idx))
					continue
				}
				rec.ckpts[idx] = data
			}
		}
	}
	return rec, nil
}

// decodeResultLine decodes one journal record, unwrapping and verifying
// the CRC envelope; plain pre-envelope lines pass through. ok=false marks
// the record torn or corrupt — the caller truncates from there.
func (jn *journal) decodeResultLine(id string, raw []byte) (resultLine, bool) {
	var env journalLine
	var line resultLine
	if err := json.Unmarshal(raw, &env); err != nil {
		return line, false
	}
	if env.Line == nil {
		// Legacy record written before the integrity envelope existed.
		if err := json.Unmarshal(raw, &line); err != nil || (line.Result == nil && line.Terminal == "") {
			return line, false
		}
		return line, true
	}
	if crc32.Checksum(env.Line, crcTable) != env.CRC {
		jn.crcErrors++
		jn.logf(sweepd.KV("jobd.journal_crc_error", "job", id, "bytes", len(raw)))
		return line, false
	}
	if err := json.Unmarshal(env.Line, &line); err != nil {
		return line, false
	}
	return line, true
}
