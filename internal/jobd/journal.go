// Disk journal for the job platform. Layout, one directory per job:
//
//	DIR/<id>/spec.json      the submission (atomic write, then the job is durable)
//	DIR/<id>/results.ndjson one line per completed point, plus a terminal line
//	DIR/<id>/ckpt/<index>   latest serialized checkpoint per unfinished point
//
// Everything is written crash-first: the spec and checkpoints go through
// temp-file + rename (a reader sees the old or the new bytes, never a
// torn file), and the results log is append-only with a tolerant reader —
// a torn final line (the process died mid-append) is ignored, which just
// reruns that point deterministically. No fsync: the durability target is
// process death, the failure mode the platform actually recovers from; a
// kernel-level crash additionally leans on rename ordering, degrading, at
// worst, to recomputing a little more.
package jobd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/sweepd"
)

// specRecord is the journaled form of one submission.
type specRecord struct {
	ID        string          `json:"id"`
	Tenant    string          `json:"tenant"`
	Priority  int             `json:"priority,omitempty"`
	Seq       uint64          `json:"seq"`
	Submitted time.Time       `json:"submitted"`
	Job       *sweepd.WireJob `json:"job"`
}

// resultLine is one line of results.ndjson: either a completed point or the
// job's terminal marker.
type resultLine struct {
	Result   *sweepd.WireResult `json:"result,omitempty"`
	Terminal State              `json:"terminal,omitempty"`
	Err      string             `json:"err,omitempty"`
}

// recoveredJob is one job replayed from disk.
type recoveredJob struct {
	spec        *specRecord
	results     []*sweepd.WireResult
	terminal    State
	terminalErr string
	ckpts       map[int][]byte
}

type journal struct {
	dir string
}

func openJournal(dir string) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobd: open journal: %w", err)
	}
	return &journal{dir: dir}, nil
}

func (jn *journal) jobDir(id string) string { return filepath.Join(jn.dir, id) }

// atomicWrite writes path via a temp file in the same directory + rename.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// writeSpec makes a submission durable. Once it returns, a restart
// recovers the job.
func (jn *journal) writeSpec(rec *specRecord) error {
	dir := jn.jobDir(rec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, "spec.json"), data)
}

// appendLine appends one result or terminal line to the job's log.
func (jn *journal) appendLine(id string, line resultLine) error {
	data, err := json.Marshal(line)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(jn.jobDir(id), "results.ndjson"),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// saveCheckpoint persists a point's latest checkpoint, atomically
// replacing any older one.
func (jn *journal) saveCheckpoint(id string, index int, data []byte) error {
	dir := filepath.Join(jn.jobDir(id), "ckpt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return atomicWrite(filepath.Join(dir, strconv.Itoa(index)), data)
}

// dropCheckpoint removes a point's persisted checkpoint (its result is
// durable, the resume state is dead weight). Best-effort.
func (jn *journal) dropCheckpoint(id string, index int) {
	os.Remove(filepath.Join(jn.jobDir(id), "ckpt", strconv.Itoa(index)))
}

// clearCheckpoints removes a terminal job's checkpoint directory.
func (jn *journal) clearCheckpoints(id string) {
	os.RemoveAll(filepath.Join(jn.jobDir(id), "ckpt"))
}

// load replays every job directory. Unreadable entries are skipped, never
// fatal: one corrupt job must not keep the service from coming back up.
func (jn *journal) load() ([]*recoveredJob, error) {
	entries, err := os.ReadDir(jn.dir)
	if err != nil {
		return nil, fmt.Errorf("jobd: read journal: %w", err)
	}
	var out []*recoveredJob
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := jn.loadJob(e.Name())
		if err != nil {
			// Torn spec (crash mid-submit before the rename landed) or
			// hand-damaged directory: the submission was never acknowledged
			// durable, skipping it breaks no promise.
			continue
		}
		out = append(out, rec)
	}
	return out, nil
}

func (jn *journal) loadJob(id string) (*recoveredJob, error) {
	dir := jn.jobDir(id)
	data, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	spec := &specRecord{}
	if err := json.Unmarshal(data, spec); err != nil {
		return nil, fmt.Errorf("jobd: job %s: corrupt spec: %w", id, err)
	}
	if spec.ID != id || spec.Job == nil {
		return nil, fmt.Errorf("jobd: job %s: spec does not match its directory", id)
	}
	rec := &recoveredJob{spec: spec, ckpts: make(map[int][]byte)}

	// Results log: tolerate a torn trailing line (death mid-append) by
	// stopping at the first undecodable line; everything before it stands.
	if f, err := os.Open(filepath.Join(dir, "results.ndjson")); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
		for sc.Scan() {
			var line resultLine
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				break
			}
			switch {
			case line.Result != nil:
				rec.results = append(rec.results, line.Result)
			case line.Terminal != "":
				rec.terminal = line.Terminal
				rec.terminalErr = line.Err
			}
		}
		f.Close()
	}

	// Checkpoints only matter for non-terminal jobs; their writes are
	// atomic so any present file is whole.
	if rec.terminal == "" {
		if ents, err := os.ReadDir(filepath.Join(dir, "ckpt")); err == nil {
			for _, ce := range ents {
				idx, err := strconv.Atoi(ce.Name())
				if err != nil {
					continue
				}
				if data, err := os.ReadFile(filepath.Join(dir, "ckpt", ce.Name())); err == nil && len(data) > 0 {
					rec.ckpts[idx] = data
				}
			}
		}
	}
	return rec, nil
}
