package jobd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

// wirePoints builds submission points named "<tag>/rb=R/lsq=L". RB size
// feeds the trace key (one key-group per distinct RB), LSQ size is
// engine-only, so rbs selects the group count and lsqs the group width.
func wirePoints(t *testing.T, tag string, rbs, lsqs []int) []sweepd.WirePoint {
	t.Helper()
	var pts []sweepd.WirePoint
	for _, rb := range rbs {
		for _, lsq := range lsqs {
			cfg := core.DefaultConfig()
			cfg.RBSize = rb
			cfg.LSQSize = lsq
			spec, err := sweepd.SpecOf(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pts = append(pts, sweepd.WirePoint{
				Name:   fmt.Sprintf("%s/rb=%d/lsq=%d", tag, rb, lsq),
				Config: spec,
			})
		}
	}
	return pts
}

// gatedPool is a WorkerPool whose membership the test flips at will —
// holding it empty until every submission has landed makes the first
// dispatch see the full queue, so dispatch order is a pure function of the
// scheduling policy.
type gatedPool struct {
	mu sync.Mutex
	ws []sweepd.Worker
}

func (g *gatedPool) Workers() []sweepd.Worker {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]sweepd.Worker(nil), g.ws...)
}

func (g *gatedPool) set(ws ...sweepd.Worker) {
	g.mu.Lock()
	g.ws = ws
	g.mu.Unlock()
}

// fakeWorker hands each dispatched group to the test and blocks until the
// test releases it — full control over dispatch sequencing without running
// engines.
type fakeWorker struct {
	runs chan *fakeRun
}

type fakeRun struct {
	job     *sweepd.Job
	gr      sweepd.GroupRun
	release chan error
}

// tag returns the submission tag of the group's first point ("A1" of
// "A1/rb=8/lsq=4") — how the test identifies whose group was dispatched.
func (r *fakeRun) tag() string {
	name := r.job.Points[r.gr.Indices[0]].Name
	return name[:strings.IndexByte(name, '/')]
}

func newFakeWorker() *fakeWorker { return &fakeWorker{runs: make(chan *fakeRun, 64)} }

func (w *fakeWorker) RunGroup(ctx context.Context, job *sweepd.Job, gr sweepd.GroupRun, emit func(sweepd.PointResult)) error {
	r := &fakeRun{job: job, gr: gr, release: make(chan error, 1)}
	w.runs <- r
	select {
	case err := <-r.release:
		if err != nil {
			return err
		}
		for _, idx := range gr.Indices {
			emit(sweepd.PointResult{Index: idx, Result: sweep.Result{Point: job.Points[idx]}})
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func nextRun(t *testing.T, w *fakeWorker) *fakeRun {
	t.Helper()
	select {
	case r := <-w.runs:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("no group dispatched within 5s")
		return nil
	}
}

// TestFairnessInterleavesTenants: with one serialized worker slot and
// tenant A's three jobs queued ahead of tenant B's one, the weighted
// fair-share policy must alternate A and B groups instead of draining A's
// whole backlog first — B is not starved by a burstier tenant.
func TestFairnessInterleavesTenants(t *testing.T) {
	pool := &gatedPool{}
	p, err := New(Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rbs := []int{8, 16} // two groups per job
	for i := 1; i <= 3; i++ {
		tag := fmt.Sprintf("A%d", i)
		if _, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000,
			Points: wirePoints(t, tag, rbs, []int{4})}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Submit("bob", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "B1", rbs, []int{4})}); err != nil {
		t.Fatal(err)
	}

	w := newFakeWorker()
	pool.set(w)
	p.Kick()

	var order []string
	for i := 0; i < 8; i++ {
		r := nextRun(t, w)
		order = append(order, r.tag())
		r.release <- nil
	}
	// Start-time fair queuing with equal weights alternates the two tenants
	// while both have work, oldest job first within a tenant; B's two groups
	// land in the first four slots despite three A jobs being queued ahead.
	want := []string{"A1", "B1", "A1", "B1", "A2", "A2", "A3", "A3"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

// TestPriorityPreempts: a higher-priority job submitted last still
// dispatches first; fairness orders only within a priority level.
func TestPriorityPreempts(t *testing.T) {
	pool := &gatedPool{}
	p, err := New(Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rbs := []int{8, 16}
	if _, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "LOW", rbs, []int{4})}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("bob", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Priority: 5, Points: wirePoints(t, "HIGH", rbs, []int{4})}); err != nil {
		t.Fatal(err)
	}

	w := newFakeWorker()
	pool.set(w)
	p.Kick()

	var order []string
	for i := 0; i < 4; i++ {
		r := nextRun(t, w)
		order = append(order, r.tag())
		r.release <- nil
	}
	want := []string{"HIGH", "HIGH", "LOW", "LOW"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("dispatch order = %v, want %v", order, want)
	}
}

// TestWeightsSkewShares: tenant weights bias the interleave — weight 2 gets
// two dispatches for weight 1's one while both are backlogged.
func TestWeightsSkewShares(t *testing.T) {
	pool := &gatedPool{}
	p, err := New(Options{Pool: pool, Tenants: []Tenant{
		{Name: "heavy", Token: "th", Weight: 2},
		{Name: "light", Token: "tl", Weight: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rbs := []int{4, 8, 12, 16, 20, 24} // six groups per job
	if _, err := p.Submit("heavy", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "H1", rbs, []int{4})}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit("light", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "L1", rbs, []int{4})}); err != nil {
		t.Fatal(err)
	}

	w := newFakeWorker()
	pool.set(w)
	p.Kick()

	counts := map[string]int{}
	for i := 0; i < 6; i++ {
		r := nextRun(t, w)
		counts[r.tag()]++
		r.release <- nil
	}
	if counts["H1"] != 4 || counts["L1"] != 2 {
		t.Fatalf("first six dispatches H1=%d L1=%d, want 4/2 (weight 2:1)", counts["H1"], counts["L1"])
	}
}

// TestAdmissionControl: the platform refuses work beyond the queue and
// per-tenant caps with typed errors (the HTTP layer's 429s) and counts the
// rejections; canceling a queued job frees its slot.
func TestAdmissionControl(t *testing.T) {
	p, err := New(Options{Pool: StaticPool{}, MaxQueue: 3, TenantMaxInFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	submit := func(tenant, tag string) (JobStatus, error) {
		return p.Submit(tenant, SubmitRequest{Workload: "gzip", Instructions: 1000,
			Points: wirePoints(t, tag, []int{8}, []int{4})})
	}

	a1, err := submit("alice", "A1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit("alice", "A2"); err != nil {
		t.Fatal(err)
	}
	if _, err := submit("alice", "A3"); !errors.Is(err, ErrTenantBusy) {
		t.Fatalf("3rd alice submit: err = %v, want ErrTenantBusy", err)
	}
	if _, err := submit("bob", "B1"); err != nil {
		t.Fatal(err)
	}
	if _, err := submit("bob", "B2"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("4th queued submit: err = %v, want ErrQueueFull", err)
	}
	if m := p.Snapshot(); m.Rejected != 2 || m.QueueDepth != 3 {
		t.Fatalf("rejected=%d queue=%d, want 2/3", m.Rejected, m.QueueDepth)
	}

	// Refused ≠ dropped: canceling a queued job frees its admission slot
	// and the refused tenant's resubmission is admitted.
	if _, err := p.Cancel("alice", a1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := submit("alice", "A3"); err != nil {
		t.Fatalf("submit after cancel: %v", err)
	}
	// Tenant scoping: bob cannot see or cancel alice's job.
	if _, err := p.Cancel("bob", a1.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("cross-tenant cancel: err = %v, want ErrUnknownJob", err)
	}
}

// TestWorkerDeathRequeues: a worker dying mid-group marks it dead, requeues
// the unfinished remainder on a survivor, and the job still completes.
func TestWorkerDeathRequeues(t *testing.T) {
	pool := &gatedPool{}
	p, err := New(Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	st, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "A1", []int{8}, []int{4, 8})})
	if err != nil {
		t.Fatal(err)
	}

	victim, survivor := newFakeWorker(), newFakeWorker()
	pool.set(victim)
	p.Kick()

	r := nextRun(t, victim)
	pool.set(victim, survivor)
	r.release <- errors.New("host died")
	r2 := nextRun(t, survivor)
	if len(r2.gr.Indices) != 2 {
		t.Fatalf("requeued group has %d points, want 2", len(r2.gr.Indices))
	}
	r2.release <- nil

	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err := p.Status("alice", st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if got.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after requeue", got.State)
		}
		time.Sleep(time.Millisecond)
	}
	if m := p.Snapshot(); m.Requeues != 1 {
		t.Fatalf("requeues = %d, want 1", m.Requeues)
	}
	// The dead worker receives nothing further even though the pool still
	// lists it: dispatch the next job and it must land on the survivor.
	if _, err := p.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: 1000,
		Points: wirePoints(t, "A2", []int{8}, []int{4})}); err != nil {
		t.Fatal(err)
	}
	r3 := nextRun(t, survivor)
	r3.release <- nil
	select {
	case <-victim.runs:
		t.Fatal("dead worker was assigned another group")
	default:
	}
}

// TestCrashRecoveryResumesMidRun is the platform's crash drill: kill the
// platform mid-job (abrupt Close — the journal sees nothing a SIGKILL
// would not leave), restart on the same journal with fresh workers, and
// require that every point completes, the assembled results are
// byte-identical to an uninterrupted local run, and at least one point
// provably resumed from a persisted checkpoint instead of cycle 0.
func TestCrashRecoveryResumesMidRun(t *testing.T) {
	dir := t.TempDir()
	const instrs = 200_000

	pts := wirePoints(t, "R1", []int{8, 16}, []int{4, 8})

	// Phase 1: one slow worker, checkpointing every 2000 cycles. Wait for
	// the first checkpoint to hit the disk journal, then kill the platform.
	w1 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Parallelism: 1, CheckpointEvery: 2000})
	p1, err := New(Options{Pool: StaticPool{w1}, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p1.Submit("alice", SubmitRequest{Workload: "gzip", Instructions: instrs, Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	ckptDir := filepath.Join(dir, st.ID, "ckpt")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint persisted within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p1.Close()

	// The job must not have finished: there is something left to recover.
	rec, err := (&journal{dir: dir}).loadJob(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.terminal != "" {
		t.Fatalf("phase 1 left terminal=%q; want an unfinished job", rec.terminal)
	}

	// Phase 2: a fresh platform on the same journal. The job must re-enter
	// the queue (not be lost), finish, and resume past cycle 0.
	w2 := sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{CheckpointEvery: 2000})
	p2, err := New(Options{Pool: StaticPool{w2}, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	m := p2.Snapshot()
	if m.RecoveredJobs != 1 || m.RecoveredCkpts == 0 {
		t.Fatalf("recovered jobs=%d ckpts=%d, want 1/>0", m.RecoveredJobs, m.RecoveredCkpts)
	}

	var wrs []*sweepd.WireResult
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	state, errStr, err := p2.StreamResults(ctx, "alice", st.ID, func(wr *sweepd.WireResult) error {
		wrs = append(wrs, wr)
		return nil
	})
	if err != nil || state != StateDone || errStr != "" {
		t.Fatalf("recovered job ended state=%s err=%q streamErr=%v, want done", state, errStr, err)
	}
	if len(wrs) != len(pts) {
		t.Fatalf("streamed %d results, want %d", len(wrs), len(pts))
	}
	if w2.ResumedCycles() == 0 {
		t.Fatal("no point resumed past cycle 0 on the recovered platform")
	}

	// Byte-identical to an uninterrupted run: assemble the job's results
	// and compare against the plain local runner on the same spec-derived
	// points.
	p2.mu.Lock()
	j := p2.jobs[st.ID]
	p2.mu.Unlock()
	got, err := sweepResultsOf(j.sj, j.results)
	if err != nil {
		t.Fatal(err)
	}
	runner := sweep.Runner{Workload: j.sj.Profile, Instructions: j.sj.Instructions,
		Traces: tracecache.New(tracecache.Config{})}
	want, err := runner.Run(context.Background(), j.sj.Points)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("recovered results differ from an uninterrupted run\nrecovered: %.400s\nlocal:     %.400s", gotJSON, wantJSON)
	}

	// The journal is settled: terminal marker written, checkpoints cleared.
	rec, err = (&journal{dir: dir}).loadJob(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rec.terminal != StateDone {
		t.Fatalf("journal terminal=%q, want done", rec.terminal)
	}
	if _, err := os.ReadDir(ckptDir); !os.IsNotExist(err) {
		t.Errorf("terminal job's checkpoint directory survived: %v", err)
	}
}
