package jobd

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape fetches /metrics from a platform's handler.
func scrape(t *testing.T, srv *httptest.Server) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not the text exposition format", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// validateExposition checks a /metrics body against the text exposition
// format: every sample line belongs to a family with a # TYPE declaration,
// every declared family has exactly one # HELP line (before its TYPE), and
// label values are correctly escaped (quotes balanced, only \\ \" \n
// escapes). Returns the set of family names seen.
func validateExposition(t *testing.T, body string) map[string]string {
	t.Helper()
	help := map[string]bool{}
	types := map[string]string{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				t.Errorf("line %d: HELP without text: %q", ln+1, line)
			}
			if help[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || (typ != "counter" && typ != "gauge" && typ != "histogram") {
				t.Errorf("line %d: bad TYPE line: %q", ln+1, line)
			}
			if !help[name] {
				t.Errorf("line %d: TYPE for %s without a preceding HELP", ln+1, name)
			}
			if _, dup := types[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("line %d: unknown comment: %q", ln+1, line)
			continue
		}
		name, labels := sampleName(t, ln+1, line)
		fam := name
		if types[fam] == "" {
			// Histogram samples carry suffixed names.
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, ok := strings.CutSuffix(name, suf); ok && types[base] == "histogram" {
					fam = base
					break
				}
			}
		}
		if types[fam] == "" {
			t.Errorf("line %d: sample %q has no TYPE declaration", ln+1, name)
		}
		_ = labels
	}
	return types
}

// sampleName parses one sample line, validating the label-set escaping,
// and returns the metric name and raw label block.
func sampleName(t *testing.T, ln int, line string) (string, string) {
	t.Helper()
	name, rest, hasLabels := strings.Cut(line, "{")
	labels := ""
	if !hasLabels {
		name, _, _ = strings.Cut(name, " ")
	}
	if hasLabels {
		end := -1
		inQuote := false
		for i := 0; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				if i+1 >= len(rest) || !strings.ContainsRune(`\"n`, rune(rest[i+1])) {
					t.Errorf("line %d: invalid escape in label value: %q", ln, line)
				}
				i++
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 || inQuote {
			t.Errorf("line %d: unterminated label block: %q", ln, line)
			return name, ""
		}
		labels = rest[:end]
		rest = strings.TrimPrefix(rest[end+1:], " ")
		line = name + " " + rest
	}
	fields := strings.Fields(line)
	if len(fields) != 2 {
		t.Errorf("line %d: sample is not 'name value': %q", ln, line)
	}
	return name, labels
}

// TestMetricsExposition scrapes a working platform and validates the
// format end to end: every pre-existing jobd family is still exposed under
// its original name, the new latency/trace families appear, and a tenant
// name full of quote/backslash/newline hostility round-trips through the
// label escaping without corrupting the format.
func TestMetricsExposition(t *testing.T) {
	hostile := "al\"ice\\ten\nant"
	p, err := New(Options{Pool: StaticPool{}, Tenants: []Tenant{
		{Name: hostile, Token: "tok-h"},
		{Name: "bob", Token: "tok-b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	for _, tok := range []string{"tok-h", "tok-b"} {
		tenant, _ := p.TenantForToken(tok)
		if _, err := p.Submit(tenant, SubmitRequest{Workload: "gzip", Instructions: 1000,
			Points: wirePoints(t, "X", []int{8}, []int{4})}); err != nil {
			t.Fatal(err)
		}
	}

	body := scrape(t, srv)
	types := validateExposition(t, body)

	// Every series name the hand-rolled exporter served must survive the
	// registry migration: dashboards scrape by name.
	preExisting := map[string]string{
		"jobd_queue_depth":               "gauge",
		"jobd_workers":                   "gauge",
		"jobd_workers_dead":              "gauge",
		"jobd_tenant_jobs_queued":        "gauge",
		"jobd_tenant_jobs_running":       "gauge",
		"jobd_jobs":                      "gauge",
		"jobd_group_requeues_total":      "counter",
		"jobd_resume_points_total":       "counter",
		"jobd_recovered_jobs":            "counter",
		"jobd_recovered_points":          "counter",
		"jobd_recovered_checkpoints":     "counter",
		"jobd_admission_rejected_total":  "counter",
		"jobd_telemetry_snapshots_total": "counter",
		"jobd_telemetry_dropped_total":   "counter",
		"jobd_telemetry_clients":         "gauge",
	}
	for name, typ := range preExisting {
		if types[name] != typ {
			t.Errorf("pre-existing family %s: type %q, want %q", name, types[name], typ)
		}
	}
	for _, name := range []string{
		"jobd_trace_spans_total", "jobd_trace_spans_dropped_total",
		"jobd_queue_wait_seconds", "jobd_first_result_seconds", "jobd_job_duration_seconds",
	} {
		if types[name] == "" {
			t.Errorf("new family %s missing from exposition", name)
		}
	}

	// The hostile tenant renders as one valid escaped label value.
	want := `jobd_tenant_jobs_queued{tenant="al\"ice\\ten\nant"} 1`
	if !strings.Contains(body, want) {
		t.Errorf("hostile tenant label not escaped as %q in:\n%s", want, body)
	}
}

// TestSnapshotConsistencyRace hammers /metrics scrapes against concurrent
// submissions and cancellations. The scrape applies ONE Platform.Snapshot
// to the registry, so it can never tear (e.g. a job counted in two states
// at once); the race detector (CI runs this package -race -count=3) checks
// the registry's internals, and the queued-vs-jobs cross-check below
// catches stale mixed snapshots.
func TestSnapshotConsistencyRace(t *testing.T) {
	p, err := New(Options{Pool: StaticPool{}, MaxQueue: 1 << 20,
		Tenants: []Tenant{{Name: "alice", Token: "tok-a", MaxInFlight: 1 << 20}}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	pts := wirePoints(t, "R", []int{8}, []int{4})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				st, err := p.Submit("alice", SubmitRequest{Workload: "gzip",
					Instructions: 1000, Points: pts})
				if err != nil {
					return
				}
				p.Cancel("alice", st.ID) //nolint:errcheck
			}
		}()
	}
	deadline := time.After(500 * time.Millisecond)
	for {
		select {
		case <-deadline:
			cancel()
			wg.Wait()
			return
		default:
		}
		body := scrape(t, srv)
		// The tenant series is absent until a snapshot first sees a queued
		// alice job; from the same snapshot, that is exactly when
		// jobs{queued} is 0 — so absent reads as 0.
		queued := gaugeValue(t, body, `jobd_tenant_jobs_queued{tenant="alice"}`)
		jobsQueued := gaugeValue(t, body, `jobd_jobs{state="queued"}`)
		// Both families came from one Snapshot: with a single tenant they
		// must agree exactly. A stale per-family snapshot would let them
		// diverge under this churn.
		if queued != jobsQueued {
			t.Fatalf("torn scrape: tenant queued=%d but jobs{queued}=%d\n%s",
				queued, jobsQueued, body)
		}
	}
}

// gaugeValue extracts one integral sample value from an exposition body;
// an absent series reads as 0 (a vec series exists only once observed).
func gaugeValue(t *testing.T, body, series string) int {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v int
			if _, err := fmt.Sscanf(rest, "%d", &v); err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	return 0
}
