// Package jobd is the multi-tenant sweep job platform: the control plane
// that turns the sharded sweep service (internal/sweepd) into something that
// can front sustained traffic from many users. Where a sweepd.Coordinator
// runs exactly one job per client connection, a jobd.Platform accepts many
// jobs from many tenants, persists every submission to a disk journal so a
// restarted coordinator recovers queued *and* in-flight work, schedules all
// admitted jobs' trace-key groups over one shared worker pool with strict
// priorities and weighted per-tenant fairness, and enforces admission
// control so a submission burst degrades to queueing or 429, never to
// dropped or corrupted work.
//
// Scheduling model: the unit of dispatch is the sweepd key-group. Every
// admitted job is sharded into groups exactly as the one-job scheduler
// shards them (content-addressed trace keys, so a group runs on one worker
// and each distinct trace is generated once per host). A free worker slot
// receives the group chosen by, in order: highest job priority, then lowest
// tenant virtual time (start-time weighted fair queuing — each dispatch
// advances the owning tenant's clock by 1/weight, and a tenant returning
// from idle is lifted to the platform clock so it can neither monopolize
// the pool nor be starved by a busier tenant's backlog), then submission
// age. Worker death requeues the group's unfinished points on the next free
// slot, resuming from the latest checkpoints the dead worker shipped.
//
// Durability model: submissions are journaled before they are acknowledged;
// results append to a per-job NDJSON log as points complete; shipped
// checkpoints persist (latest-wins, atomically) per point. Recovery replays
// the journal: terminal jobs come back queryable, unfinished jobs re-enter
// the queue with their completed points pinned and their in-flight points
// resuming from the persisted checkpoints — past cycle 0, never silently
// restarted from scratch when resume state exists, and never dropped.
package jobd

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sweep"
	"repro/internal/sweepd"
	"repro/internal/workload"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle: queued → running → done/failed, with canceled
// reachable from either live state. The last three are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Platform-level errors. The HTTP front door maps these onto status codes
// (ErrQueueFull/ErrTenantBusy -> 429, ErrUnknownJob -> 404, ErrClosed ->
// 503); embedders can errors.Is against them directly.
var (
	ErrQueueFull  = errors.New("jobd: job queue is full")
	ErrTenantBusy = errors.New("jobd: tenant is at its in-flight job limit")
	ErrUnknownJob = errors.New("jobd: unknown job")
	ErrClosed     = errors.New("jobd: platform closed")
)

// RetryAfterError decorates an admission rejection with backoff advice:
// the HTTP door serves Seconds as the 429's Retry-After header, derived
// from live queue and tenant-cap state rather than a constant, so client
// backoff tracks actual congestion. Unwrap keeps errors.Is working
// against ErrQueueFull / ErrTenantBusy.
type RetryAfterError struct {
	Err     error
	Seconds int
}

// Error reports the wrapped rejection's message.
func (e *RetryAfterError) Error() string { return e.Err.Error() }

// Unwrap exposes the wrapped rejection to errors.Is/As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterSeconds clamps derived backoff advice to [1, 30] seconds.
func retryAfterSeconds(s int) int {
	if s < 1 {
		return 1
	}
	if s > 30 {
		return 30
	}
	return s
}

// Tenant is one configured tenant: its bearer token, fairness weight and
// admission cap. Tenants load from the -tenants JSON file
// ({"tenants": [...]}) via LoadTenants.
type Tenant struct {
	Name  string `json:"name"`
	Token string `json:"token"`
	// Weight is the tenant's fair-share weight (default 1): with tenants A
	// weight 2 and B weight 1 both backlogged, A's groups get two worker
	// slots for every one of B's.
	Weight int `json:"weight,omitempty"`
	// MaxInFlight caps the tenant's queued+running jobs (admission control;
	// 0 uses Options.TenantMaxInFlight). Submissions beyond it get
	// ErrTenantBusy (HTTP 429) and admitted work is unaffected.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

// WorkerPool supplies the workers groups dispatch onto. sweepd.Coordinator
// implements it (its registered remote workers); StaticPool wraps a fixed
// in-process set.
type WorkerPool interface {
	Workers() []sweepd.Worker
}

// StaticPool is a fixed worker pool — the in-process analog of a registered
// worker fleet, used by tests and local platforms over LoopbackWorkers.
type StaticPool []sweepd.Worker

// Workers implements WorkerPool.
func (p StaticPool) Workers() []sweepd.Worker { return append([]sweepd.Worker(nil), p...) }

// Defaults for Options zero values.
const (
	DefaultMaxQueue          = 64
	DefaultTenantMaxInFlight = 8
)

// Options configures a Platform.
type Options struct {
	// Pool supplies workers (required). Wire Coordinator.OnWorkersChanged
	// to Platform.Kick so queued groups dispatch the moment capacity
	// appears.
	Pool WorkerPool
	// JournalDir persists submissions, results and checkpoints for crash
	// recovery. Empty runs the platform in-memory only (tests, benchmarks):
	// a restart then loses queued work, exactly like the pre-jobd service.
	JournalDir string
	// Tenants is the static tenant set. Empty disables authentication:
	// every request maps to a single "default" tenant — the development
	// mode, never what a shared deployment should run.
	Tenants []Tenant
	// MaxQueue bounds jobs waiting in StateQueued platform-wide
	// (admission control; 0 = DefaultMaxQueue). Beyond it submissions get
	// ErrQueueFull.
	MaxQueue int
	// TenantMaxInFlight is the default per-tenant queued+running job cap
	// for tenants that do not set their own (0 = DefaultTenantMaxInFlight).
	TenantMaxInFlight int
	// CheckpointBudget caps retained resume-checkpoint bytes per job
	// (0 = sweepd.DefaultCheckpointBudget, negative = unlimited).
	CheckpointBudget int64
	// SlotsPerWorker is how many groups one worker runs concurrently
	// (0 = 1). Remote workers multiplex assignments over one connection,
	// so >1 trades per-group latency for utilization on wide hosts.
	SlotsPerWorker int
	// TelemetryEvery is the cadence (major cycles) at which running jobs'
	// engines emit live interval snapshots (0 = core.DefaultObserverInterval).
	// Snapshots are ephemeral — buffered in a per-job ring for watchers
	// (StreamTelemetry, GET /v1/jobs/{id}/telemetry), never journaled.
	TelemetryEvery uint64
	// TelemetryRing is the per-job snapshot ring capacity
	// (0 = DefaultTelemetryRing). Watchers slower than the emission rate
	// lose the snapshots the ring wraps past; the loss is counted, never
	// applied as backpressure to the engines.
	TelemetryRing int
	// TraceSpans is the per-job lifecycle span log capacity
	// (0 = DefaultTraceSpans); see trace.go. Traces are ephemeral, never
	// journaled.
	TraceSpans int
	// Metrics, when non-nil, is the obs registry the platform registers its
	// metric families on — share one registry across layers (sweepd,
	// tracecache) to serve them all from one /metrics. nil gives the
	// platform a private registry, so GET /metrics always works.
	Metrics *obs.Registry
	// Logf receives service log lines (key=value structured; see
	// sweepd.KV). nil discards.
	Logf func(format string, args ...any)
	// JournalSync makes every journal append and atomic rename fsync
	// before reporting success (resimd -journal-sync): power-loss
	// durability at a per-write latency cost. Off, the journal still
	// survives process death — the failure mode recovery targets.
	JournalSync bool
	// Faults, when non-nil, arms the platform's fault-injection sites
	// (jobd.journal.*, jobd.http.submit) with a deterministic schedule;
	// nil injects nothing. See internal/faults and docs/ROBUSTNESS.md.
	Faults *faults.Injector
}

// SubmitRequest is one job submission: the workload (by registry name, or
// an explicit profile), the per-point instruction budget, the design points
// in wire form, and a priority (higher dispatches first; default 0).
type SubmitRequest struct {
	Workload     string             `json:"workload,omitempty"`
	Profile      *workload.Profile  `json:"profile,omitempty"`
	Instructions uint64             `json:"instructions"`
	Priority     int                `json:"priority,omitempty"`
	Points       []sweepd.WirePoint `json:"points"`
}

// PointStatus is one design point's progress within a job.
type PointStatus struct {
	Index int    `json:"index"`
	Name  string `json:"name"`
	Done  bool   `json:"done"`
	Err   string `json:"err,omitempty"`
}

// JobStatus is a job's externally visible state.
type JobStatus struct {
	ID           string        `json:"id"`
	Tenant       string        `json:"tenant"`
	Priority     int           `json:"priority"`
	State        State         `json:"state"`
	Workload     string        `json:"workload"`
	Instructions uint64        `json:"instructions"`
	Submitted    time.Time     `json:"submitted"`
	Total        int           `json:"total"`
	Completed    int           `json:"completed"`
	Err          string        `json:"err,omitempty"`
	Points       []PointStatus `json:"points,omitempty"`
}

// Metrics is the platform counter snapshot served by GET /metrics.
type Metrics struct {
	QueueDepth      int
	Workers         int
	DeadWorkers     int
	QueuedByTenant  map[string]int
	RunningByTenant map[string]int
	Requeues        uint64
	ResumePoints    uint64
	RecoveredJobs   int
	RecoveredPoints int
	RecoveredCkpts  int
	Rejected        uint64
	JobsByState     map[State]int
	// TelemetrySnaps counts interval snapshots appended to job rings;
	// TelemetryDropped counts snapshots watchers lost to ring wrap-around
	// (slow-client drop policy); TelemetryClients is the number of
	// currently attached telemetry streams.
	TelemetrySnaps   uint64
	TelemetryDropped uint64
	TelemetryClients int
	// TraceSpans counts lifecycle spans appended to job trace logs;
	// TraceDropped counts spans evicted from bounded logs (see trace.go).
	TraceSpans   uint64
	TraceDropped uint64
	// JournalTornTails counts results.ndjson tails truncated during
	// recovery (torn or corrupt trailing records); JournalCRCErrors
	// counts records that failed their integrity checksum;
	// JournalDegraded counts other tolerated recovery blemishes (empty
	// checkpoint files, temp-file leftovers from crashed renames).
	JournalTornTails int
	JournalCRCErrors int
	JournalDegraded  int
}

// tenantState is one tenant's live scheduling state.
type tenantState struct {
	cfg     Tenant
	queued  int
	running int
	vtime   float64 // weighted fair-queuing virtual time
}

func (t *tenantState) weight() float64 {
	if t.cfg.Weight > 0 {
		return float64(t.cfg.Weight)
	}
	return 1
}

// groupState tracks one key-group through dispatch, completion and requeue.
type groupState struct {
	g        sweepd.Group
	done     map[int]bool
	assigned bool
}

// job is one admitted job.
type job struct {
	id        string
	tenant    string
	priority  int
	seq       uint64
	submitted time.Time
	wire      *sweepd.WireJob
	sj        *sweepd.Job
	groups    []*groupState
	groupOf   map[int]*groupState // point index -> owning group

	state          State
	err            string
	results        []*sweepd.WireResult
	completedOrder []int
	completed      int
	ckpts          *sweepd.CheckpointStore

	// telRing holds the job's most recent interval snapshots, oldest
	// first, capped at Options.TelemetryRing; telSeq counts every snapshot
	// ever appended, so telSeq-len(telRing) is the ring's oldest retained
	// global sequence number. Guarded by the platform mutex.
	telRing []core.IntervalSnapshot
	telSeq  uint64

	// spans is the job's bounded lifecycle span log (trace.go), same ring
	// discipline as telRing. ckptSeen marks points whose first checkpoint
	// receipt was already recorded, firstDispatch/firstResult gate the
	// one-shot latency observations. Guarded by the platform mutex.
	spans         []TraceSpan
	spanSeq       uint64
	ckptSeen      map[int]bool
	firstDispatch time.Time
	firstResult   bool

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed on terminal state
	change chan struct{} // closed+replaced on every visible update
}

// workerState is the dispatcher's per-worker accounting.
type workerState struct {
	busy int
	dead bool
}

// Platform is the job platform. Build one with New; it runs until Close.
type Platform struct {
	opts Options
	jn   *journal

	ctx    context.Context
	cancel context.CancelFunc
	kick   chan struct{}
	wg     sync.WaitGroup

	// auth records whether Options.Tenants configured any tenants at
	// construction. It cannot be derived from the tenants map later:
	// tenantLocked creates "default" (and journal-recovered names) on
	// demand, which must not silently switch authentication on.
	auth bool

	mu      sync.Mutex
	jobs    map[string]*job
	order   []*job
	tenants map[string]*tenantState
	tokens  map[string]string // token -> tenant name
	workers map[sweepd.Worker]*workerState
	seq     uint64
	vclock  float64
	closed  bool

	requeues        uint64
	resumePoints    uint64
	recoveredJobs   int
	recoveredPoints int
	recoveredCkpts  int
	rejected        uint64

	telemetrySnaps   uint64
	telemetryDropped uint64
	telemetryClients int

	traceSpansTotal uint64
	traceDropped    uint64

	// reg is the obs registry serving GET /metrics; metrics holds the
	// platform's registered instruments (snapshot-applied per scrape, plus
	// the event-site latency histograms).
	reg     *obs.Registry
	metrics *PlatformMetrics
}

// New builds and starts a platform: opens (and replays) the journal, then
// starts the dispatcher. Callers must Close it.
func New(opts Options) (*Platform, error) {
	if opts.Pool == nil {
		return nil, errors.New("jobd: Options.Pool is required")
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	if opts.TenantMaxInFlight <= 0 {
		opts.TenantMaxInFlight = DefaultTenantMaxInFlight
	}
	if opts.SlotsPerWorker <= 0 {
		opts.SlotsPerWorker = 1
	}
	if opts.CheckpointBudget == 0 {
		opts.CheckpointBudget = sweepd.DefaultCheckpointBudget
	}
	if opts.TelemetryRing <= 0 {
		opts.TelemetryRing = DefaultTelemetryRing
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Platform{
		opts:    opts,
		ctx:     ctx,
		cancel:  cancel,
		kick:    make(chan struct{}, 1),
		jobs:    make(map[string]*job),
		tenants: make(map[string]*tenantState),
		tokens:  make(map[string]string),
		workers: make(map[sweepd.Worker]*workerState),
		reg:     reg,
		metrics: RegisterMetrics(reg),
	}
	p.auth = len(opts.Tenants) > 0
	for _, t := range opts.Tenants {
		if t.Name == "" {
			cancel()
			return nil, errors.New("jobd: tenant with empty name")
		}
		if _, dup := p.tenants[t.Name]; dup {
			cancel()
			return nil, fmt.Errorf("jobd: duplicate tenant %q", t.Name)
		}
		p.tenants[t.Name] = &tenantState{cfg: t}
		if t.Token != "" {
			if _, dup := p.tokens[t.Token]; dup {
				cancel()
				return nil, fmt.Errorf("jobd: tenants %q and %q share a token", p.tokens[t.Token], t.Name)
			}
			p.tokens[t.Token] = t.Name
		}
	}
	if opts.JournalDir != "" {
		jn, err := openJournal(opts.JournalDir)
		if err != nil {
			cancel()
			return nil, err
		}
		jn.sync = opts.JournalSync
		jn.inj = opts.Faults
		jn.log = func(line string) { p.logf(line) }
		p.jn = jn
		if err := p.recover(); err != nil {
			cancel()
			return nil, err
		}
	}
	p.wg.Add(1)
	go p.dispatcher()
	return p, nil
}

// Close stops dispatching, cancels in-flight groups and waits for every
// platform goroutine to drain. Non-terminal jobs are NOT marked canceled in
// the journal: like a crash, a later platform on the same journal recovers
// and finishes them. HTTP handlers still running observe ErrClosed.
func (p *Platform) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	p.wg.Wait()
	return nil
}

// Kick hints the dispatcher that capacity or work changed (worker pool
// membership, a new submission). Cheap and non-blocking; safe from any
// goroutine, including sweepd.Coordinator.OnWorkersChanged.
func (p *Platform) Kick() {
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (p *Platform) logf(line string) {
	if p.opts.Logf != nil {
		p.opts.Logf("%s", line)
	}
}

// TenantForToken resolves a bearer token to a tenant name. With no tenants
// configured every token (including none) maps to "default"; otherwise an
// unknown token is rejected.
func (p *Platform) TenantForToken(token string) (string, bool) {
	if !p.auth {
		return "default", true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	name, ok := p.tokens[token]
	return name, ok
}

// tenantLocked returns (creating on demand) the tenant's scheduling state.
// On-demand creation covers the auth-disabled "default" tenant and jobs
// recovered from a journal written under a different tenants file.
func (p *Platform) tenantLocked(name string) *tenantState {
	t := p.tenants[name]
	if t == nil {
		t = &tenantState{cfg: Tenant{Name: name}}
		p.tenants[name] = t
	}
	return t
}

// newJobID returns a fresh 16-hex-digit job ID.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// materialize validates a submission and builds its wire and scheduler
// forms. Point indices are normalized to positions; invalid configurations
// fail here, before admission — a job the workers could never run is a 400,
// not a poisoned queue entry.
func (p *Platform) materialize(req SubmitRequest) (*sweepd.WireJob, *sweepd.Job, error) {
	var prof workload.Profile
	switch {
	case req.Profile != nil:
		prof = *req.Profile
	case req.Workload != "":
		wp, err := workload.ByName(req.Workload)
		if err != nil {
			return nil, nil, err
		}
		prof = wp
	default:
		return nil, nil, errors.New("jobd: submission needs a workload name or an explicit profile")
	}
	if len(req.Points) == 0 {
		return nil, nil, errors.New("jobd: submission has no design points")
	}
	wj := &sweepd.WireJob{Profile: prof, Instructions: req.Instructions,
		Points: make([]sweepd.WirePoint, len(req.Points))}
	for i, wp := range req.Points {
		wp.Index = i
		wj.Points[i] = wp
	}
	sj, err := sweepd.JobFromWire(wj)
	if err != nil {
		return nil, nil, err
	}
	sj.CheckpointBudget = p.opts.CheckpointBudget
	// The platform, not the submission, owns the telemetry cadence: every
	// admitted job streams at the same interval into its bounded ring.
	sj.TelemetryEvery = p.telemetryEvery()
	return wj, sj, nil
}

// Submit admits one job for the tenant: validates it, applies admission
// control, journals the submission, and queues it for dispatch. The job is
// durable once Submit returns.
func (p *Platform) Submit(tenant string, req SubmitRequest) (JobStatus, error) {
	wj, sj, err := p.materialize(req)
	if err != nil {
		return JobStatus{}, err
	}
	id, err := newJobID()
	if err != nil {
		return JobStatus{}, err
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return JobStatus{}, ErrClosed
	}
	t := p.tenantLocked(tenant)
	if depth := p.queueDepthLocked(); depth >= p.opts.MaxQueue {
		p.rejected++
		// Advice scales with how deep the backlog is relative to the
		// queue bound: a just-full queue suggests a short pause, a
		// several-times-over backlog a long one.
		secs := retryAfterSeconds(1 + 4*depth/p.opts.MaxQueue)
		p.mu.Unlock()
		return JobStatus{}, &RetryAfterError{
			Err: fmt.Errorf("%w (%d queued)", ErrQueueFull, depth), Seconds: secs}
	}
	cap := t.cfg.MaxInFlight
	if cap <= 0 {
		cap = p.opts.TenantMaxInFlight
	}
	if t.queued+t.running >= cap {
		p.rejected++
		// The tenant's own jobs gate admission here: advice grows with
		// the number that must finish before a slot frees.
		secs := retryAfterSeconds(1 + t.queued + t.running)
		p.mu.Unlock()
		return JobStatus{}, &RetryAfterError{
			Err: fmt.Errorf("%w (%d in flight, cap %d)", ErrTenantBusy, t.queued+t.running, cap), Seconds: secs}
	}
	p.seq++
	j := p.newJobLocked(id, tenant, req.Priority, p.seq, time.Now(), wj, sj)
	p.spanLocked(j, TraceSpan{Event: SpanSubmit, State: StateQueued, Point: -1,
		Points: len(sj.Points),
		Detail: fmt.Sprintf("%s n=%d groups=%d", sj.Profile.Name, sj.Instructions, len(j.groups))})
	if p.jn != nil {
		if err := p.jn.writeSpec(&specRecord{ID: id, Tenant: tenant, Priority: req.Priority,
			Seq: j.seq, Submitted: j.submitted, Job: wj}); err != nil {
			// Not durable -> not admitted: the client retries rather than
			// holding a job a restart would silently lose.
			p.mu.Unlock()
			return JobStatus{}, fmt.Errorf("jobd: journal submission: %w", err)
		}
		p.spanLocked(j, TraceSpan{Event: SpanJournal, Point: -1})
	}
	p.registerLocked(j)
	t.queued++
	p.spanLocked(j, TraceSpan{Event: SpanAdmit, State: StateQueued, Point: -1})
	st := p.statusLocked(j, true)
	p.mu.Unlock()

	p.logf(sweepd.KV("jobd.job_submitted", "job", id, "tenant", tenant,
		"priority", req.Priority, "points", len(sj.Points), "groups", len(j.groups),
		"workload", sj.Profile.Name, "instructions", sj.Instructions))
	p.Kick()
	return st, nil
}

// newJobLocked builds the in-memory job structure (not yet registered).
func (p *Platform) newJobLocked(id, tenant string, priority int, seq uint64, submitted time.Time, wj *sweepd.WireJob, sj *sweepd.Job) *job {
	jctx, jcancel := context.WithCancel(p.ctx)
	j := &job{
		id: id, tenant: tenant, priority: priority, seq: seq, submitted: submitted,
		wire: wj, sj: sj,
		state:   StateQueued,
		results: make([]*sweepd.WireResult, len(sj.Points)),
		ckpts:   sweepd.NewCheckpointStore(p.opts.CheckpointBudget),
		ctx:     jctx, cancel: jcancel,
		done:     make(chan struct{}),
		change:   make(chan struct{}),
		groupOf:  make(map[int]*groupState, len(sj.Points)),
		ckptSeen: make(map[int]bool),
	}
	for _, g := range sj.Groups() {
		gs := &groupState{g: g, done: make(map[int]bool, len(g.Indices))}
		j.groups = append(j.groups, gs)
		for _, idx := range g.Indices {
			j.groupOf[idx] = gs
		}
	}
	return j
}

func (p *Platform) registerLocked(j *job) {
	p.jobs[j.id] = j
	p.order = append(p.order, j)
}

func (p *Platform) queueDepthLocked() int {
	n := 0
	for _, j := range p.order {
		if j.state == StateQueued {
			n++
		}
	}
	return n
}

// lookupLocked finds a job visible to tenant ("" bypasses scoping — only
// internal callers use that).
func (p *Platform) lookupLocked(tenant, id string) *job {
	j := p.jobs[id]
	if j == nil || (tenant != "" && j.tenant != tenant) {
		return nil
	}
	return j
}

// Status returns the job's current state, including per-point progress.
func (p *Platform) Status(tenant, id string) (JobStatus, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j := p.lookupLocked(tenant, id)
	if j == nil {
		return JobStatus{}, ErrUnknownJob
	}
	return p.statusLocked(j, true), nil
}

// List returns the tenant's jobs, oldest first, without per-point detail.
func (p *Platform) List(tenant string) []JobStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []JobStatus
	for _, j := range p.order {
		if tenant == "" || j.tenant == tenant {
			out = append(out, p.statusLocked(j, false))
		}
	}
	return out
}

// Cancel cancels a job: queued jobs never dispatch, running jobs abort
// their in-flight groups. Completed points' results remain readable.
// Canceling a terminal job is a no-op returning its status.
func (p *Platform) Cancel(tenant, id string) (JobStatus, error) {
	p.mu.Lock()
	j := p.lookupLocked(tenant, id)
	if j == nil {
		p.mu.Unlock()
		return JobStatus{}, ErrUnknownJob
	}
	if !j.state.Terminal() {
		j.cancel()
		p.finalizeLocked(j, StateCanceled, "canceled by client")
	}
	st := p.statusLocked(j, true)
	p.mu.Unlock()
	p.Kick()
	return st, nil
}

func (p *Platform) statusLocked(j *job, points bool) JobStatus {
	st := JobStatus{
		ID: j.id, Tenant: j.tenant, Priority: j.priority, State: j.state,
		Workload: j.sj.Profile.Name, Instructions: j.sj.Instructions,
		Submitted: j.submitted, Total: len(j.sj.Points), Completed: j.completed,
		Err: j.err,
	}
	if points {
		st.Points = make([]PointStatus, len(j.sj.Points))
		for i := range j.sj.Points {
			ps := PointStatus{Index: i, Name: j.sj.Points[i].Name}
			if wr := j.results[i]; wr != nil {
				ps.Done = true
				ps.Err = wr.Err
			}
			st.Points[i] = ps
		}
	}
	return st
}

// Snapshot returns the current metrics.
func (p *Platform) Snapshot() Metrics {
	p.mu.Lock()
	defer p.mu.Unlock()
	m := Metrics{
		QueuedByTenant:   make(map[string]int),
		RunningByTenant:  make(map[string]int),
		JobsByState:      make(map[State]int),
		Requeues:         p.requeues,
		ResumePoints:     p.resumePoints,
		RecoveredJobs:    p.recoveredJobs,
		RecoveredPoints:  p.recoveredPoints,
		RecoveredCkpts:   p.recoveredCkpts,
		Rejected:         p.rejected,
		TelemetrySnaps:   p.telemetrySnaps,
		TelemetryDropped: p.telemetryDropped,
		TelemetryClients: p.telemetryClients,
		TraceSpans:       p.traceSpansTotal,
		TraceDropped:     p.traceDropped,
	}
	if p.jn != nil {
		m.JournalTornTails = p.jn.tornTails
		m.JournalCRCErrors = p.jn.crcErrors
		m.JournalDegraded = p.jn.degraded
	}
	for _, j := range p.order {
		m.JobsByState[j.state]++
		switch j.state {
		case StateQueued:
			m.QueueDepth++
			m.QueuedByTenant[j.tenant]++
		case StateRunning:
			m.RunningByTenant[j.tenant]++
		}
	}
	for _, ws := range p.workers {
		if ws.dead {
			m.DeadWorkers++
		} else {
			m.Workers++
		}
	}
	return m
}

// StreamResults calls fn once per completed point, in completion order,
// blocking for new results until the job reaches a terminal state (which it
// returns with the job's error string). fn runs without the platform lock;
// its error aborts the stream.
func (p *Platform) StreamResults(ctx context.Context, tenant, id string, fn func(*sweepd.WireResult) error) (State, string, error) {
	p.mu.Lock()
	j := p.lookupLocked(tenant, id)
	p.mu.Unlock()
	if j == nil {
		return "", "", ErrUnknownJob
	}
	sent := 0
	for {
		p.mu.Lock()
		batch := make([]*sweepd.WireResult, 0, len(j.completedOrder)-sent)
		for _, idx := range j.completedOrder[sent:] {
			batch = append(batch, j.results[idx])
		}
		sent += len(batch)
		state, errStr := j.state, j.err
		change := j.change
		p.mu.Unlock()
		for _, wr := range batch {
			if err := fn(wr); err != nil {
				return state, errStr, err
			}
		}
		// state and completedOrder were snapshotted under one lock: a
		// terminal state means the order was final, so the batch above was
		// the last of it.
		if state.Terminal() {
			return state, errStr, nil
		}
		select {
		case <-ctx.Done():
			return state, errStr, ctx.Err()
		case <-p.ctx.Done():
			return state, errStr, ErrClosed
		case <-change:
		}
	}
}

// broadcastLocked wakes every waiter watching the job.
func (p *Platform) broadcastLocked(j *job) {
	close(j.change)
	j.change = make(chan struct{})
}

// finalizeLocked moves the job to a terminal state, releases its tenant
// slot and journal checkpoints, and wakes waiters.
func (p *Platform) finalizeLocked(j *job, to State, errStr string) {
	if j.state.Terminal() {
		return
	}
	t := p.tenantLocked(j.tenant)
	switch j.state {
	case StateQueued:
		t.queued--
	case StateRunning:
		t.running--
	}
	j.state = to
	j.err = errStr
	j.cancel()
	close(j.done)
	p.spanLocked(j, TraceSpan{Event: SpanComplete, State: to, Point: -1,
		Points: j.completed, Detail: errStr})
	p.metrics.JobDuration.With(j.tenant).Observe(time.Since(j.submitted).Seconds())
	p.broadcastLocked(j)
	if p.jn != nil {
		if err := p.jn.appendLine(j.id, resultLine{Terminal: to, Err: errStr}); err != nil {
			p.logf(sweepd.KV("jobd.journal_error", "job", j.id, "op", "terminal", "err", err))
		}
		p.jn.clearCheckpoints(j.id)
	}
	p.logf(sweepd.KV("jobd.job_finished", "job", j.id, "tenant", j.tenant,
		"state", to, "completed", j.completed, "total", len(j.sj.Points), "err", errStr))
}

// --- dispatcher -------------------------------------------------------------

// dispatcher is the scheduling loop: it wakes on Kick (new submission,
// pool change, freed slot) and on a coarse safety-net tick, and assigns
// dispatchable groups to free worker slots by (priority, fair share, age).
func (p *Platform) dispatcher() {
	defer p.wg.Done()
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-p.kick:
		case <-tick.C:
		}
		p.dispatch()
	}
}

func (p *Platform) dispatch() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refreshWorkersLocked()
	for {
		w, ws := p.pickWorkerLocked()
		if w == nil {
			return
		}
		j, gs := p.pickGroupLocked()
		if j == nil {
			return
		}
		p.startGroupLocked(j, gs, w, ws)
	}
}

// refreshWorkersLocked reconciles the per-worker accounting with the
// pool's current membership. A worker that left the pool with a group
// still in flight is marked dead (its RunGroup will fail and requeue);
// one that left idle is forgotten. A worker the pool re-lists after being
// marked dead stays dead — pool identity is per registration, and the
// coordinator hands out a fresh remoteWorker per reconnect.
func (p *Platform) refreshWorkersLocked() {
	current := make(map[sweepd.Worker]bool)
	for _, w := range p.opts.Pool.Workers() {
		current[w] = true
		if _, ok := p.workers[w]; !ok {
			p.workers[w] = &workerState{}
		}
	}
	for w, ws := range p.workers {
		if !current[w] {
			if ws.busy == 0 {
				delete(p.workers, w)
			} else {
				ws.dead = true
			}
		}
	}
}

// pickWorkerLocked returns the least-loaded live worker with a free slot.
func (p *Platform) pickWorkerLocked() (sweepd.Worker, *workerState) {
	var best sweepd.Worker
	var bestWS *workerState
	for w, ws := range p.workers {
		if ws.dead || ws.busy >= p.opts.SlotsPerWorker {
			continue
		}
		if bestWS == nil || ws.busy < bestWS.busy {
			best, bestWS = w, ws
		}
	}
	return best, bestWS
}

// pickGroupLocked selects the next group to dispatch: highest job priority
// first; within a priority, the tenant with the lowest virtual time
// (weighted fair share); within a tenant, oldest submission; within a job,
// first dispatchable group. Returns nil when nothing is dispatchable.
func (p *Platform) pickGroupLocked() (*job, *groupState) {
	var bestJob *job
	var bestGS *groupState
	var bestT *tenantState
	for _, j := range p.order {
		if j.state != StateQueued && j.state != StateRunning {
			continue
		}
		if j.ctx.Err() != nil {
			continue
		}
		var gs *groupState
		for _, g := range j.groups {
			if !g.assigned && len(g.done) < len(g.g.Indices) {
				gs = g
				break
			}
		}
		if gs == nil {
			continue
		}
		t := p.tenantLocked(j.tenant)
		if bestJob == nil || betterCandidate(j, t, bestJob, bestT) {
			bestJob, bestGS, bestT = j, gs, t
		}
	}
	return bestJob, bestGS
}

// betterCandidate reports whether (a, ta) should dispatch before (b, tb).
func betterCandidate(a *job, ta *tenantState, b *job, tb *tenantState) bool {
	if a.priority != b.priority {
		return a.priority > b.priority
	}
	if ta != tb && ta.vtime != tb.vtime {
		return ta.vtime < tb.vtime
	}
	return a.seq < b.seq
}

// startGroupLocked assigns gs to w and launches the run goroutine.
func (p *Platform) startGroupLocked(j *job, gs *groupState, w sweepd.Worker, ws *workerState) {
	gs.assigned = true
	ws.busy++
	t := p.tenantLocked(j.tenant)
	if j.state == StateQueued {
		j.state = StateRunning
		t.queued--
		t.running++
		p.broadcastLocked(j)
	}
	if j.firstDispatch.IsZero() {
		j.firstDispatch = time.Now()
		p.metrics.QueueWait.With(j.tenant).Observe(j.firstDispatch.Sub(j.submitted).Seconds())
	}
	// Start-time weighted fair queuing: the dispatch is charged 1/weight of
	// virtual service; a tenant returning from idle starts at the platform
	// clock instead of its stale past, so it neither replays its idle time
	// as a burst nor waits behind others' accumulated history.
	start := t.vtime
	if p.vclock > start {
		start = p.vclock
	}
	t.vtime = start + 1/t.weight()
	p.vclock = start

	rem := remainingLocked(gs)
	gr := sweepd.GroupRun{
		Indices:     rem,
		Checkpoints: make(map[int][]byte),
		OnCheckpoint: func(index int, data []byte) {
			p.onCheckpoint(j, index, data)
		},
		OnTelemetry: func(index int, snap core.IntervalSnapshot) {
			p.onTelemetry(j, index, snap)
		},
	}
	wl := workerLabel(w)
	p.spanLocked(j, TraceSpan{Event: SpanDispatch, State: j.state, Point: -1,
		Group: gs.g.KeyID, Worker: wl, Points: len(rem)})
	resume := 0
	for _, i := range rem {
		if data := j.ckpts.Get(i); len(data) > 0 {
			gr.Checkpoints[i] = data
			resume++
			p.spanLocked(j, TraceSpan{Event: SpanResume, Point: i,
				Group: gs.g.KeyID, Worker: wl, Cycle: checkpointCycles(data)})
		}
	}
	p.resumePoints += uint64(resume)
	p.logf(sweepd.KV("jobd.group_dispatched", "job", j.id, "tenant", j.tenant,
		"group", gs.g.KeyID, "points", len(rem), "resume_points", resume,
		"worker", wl))
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		err := w.RunGroup(j.ctx, j.sj, gr, func(pr sweepd.PointResult) {
			p.onResult(j, gs, wl, pr)
		})
		p.groupDone(j, gs, w, err)
	}()
}

func remainingLocked(gs *groupState) []int {
	rem := make([]int, 0, len(gs.g.Indices)-len(gs.done))
	for _, i := range gs.g.Indices {
		if !gs.done[i] {
			rem = append(rem, i)
		}
	}
	return rem
}

// workerLabel renders a worker identity for logs.
func workerLabel(w sweepd.Worker) string {
	if n, ok := w.(interface{ Name() string }); ok && n.Name() != "" {
		return n.Name()
	}
	return fmt.Sprintf("%T(%p)", w, w)
}

// onResult records one completed point: in memory, in the journal, and to
// every stream waiter. Duplicates (a requeued group rerunning a point whose
// result was lost in flight) drop — engines are deterministic, first write
// wins. worker attributes the result's origin in the job's trace.
func (p *Platform) onResult(j *job, gs *groupState, worker string, pr sweepd.PointResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	idx := pr.Index
	if j.state.Terminal() || j.ctx.Err() != nil {
		return
	}
	if idx < 0 || idx >= len(j.results) || j.results[idx] != nil || gs.done[idx] {
		return
	}
	gs.done[idx] = true
	if !j.firstResult {
		j.firstResult = true
		p.spanLocked(j, TraceSpan{Event: SpanFirstResult, Point: idx, Worker: worker})
		if !j.firstDispatch.IsZero() {
			p.metrics.FirstResult.With(j.tenant).Observe(time.Since(j.firstDispatch).Seconds())
		}
	}
	wr := &sweepd.WireResult{Index: idx, Name: pr.Result.Point.Name}
	if pr.Result.Err != nil {
		wr.Err = pr.Result.Err.Error()
	} else {
		wr.Res = sweepd.WireRunResultOf(pr.Result.Res)
	}
	j.results[idx] = wr
	j.completedOrder = append(j.completedOrder, idx)
	j.completed++
	j.ckpts.Drop(idx)
	p.spanLocked(j, TraceSpan{Event: SpanPointDone, Point: idx, Worker: worker, Detail: wr.Err})
	if p.jn != nil {
		if err := p.jn.appendLine(j.id, resultLine{Result: wr}); err != nil {
			// A result that failed to journal is still served from memory;
			// after a crash the point reruns — deterministic, so recovery
			// degrades to recomputation, never to a wrong or missing result.
			p.logf(sweepd.KV("jobd.journal_error", "job", j.id, "op", "result", "point", idx, "err", err))
		}
		p.jn.dropCheckpoint(j.id, idx)
	}
	p.broadcastLocked(j)
}

// onCheckpoint retains a shipped checkpoint in the job's budgeted store and
// persists it (latest-wins) for crash recovery.
func (p *Platform) onCheckpoint(j *job, index int, data []byte) {
	p.mu.Lock()
	if j.state.Terminal() || index < 0 || index >= len(j.results) ||
		j.results[index] != nil || len(data) == 0 {
		p.mu.Unlock()
		return
	}
	j.ckpts.Put(index, data)
	if !j.ckptSeen[index] {
		// One span per point, on its first checkpoint: the point now has
		// resume state. Per-interval shipments stay quiet, like the logs.
		j.ckptSeen[index] = true
		p.spanLocked(j, TraceSpan{Event: SpanCheckpoint, Point: index,
			Cycle:  checkpointCycles(data),
			Detail: fmt.Sprintf("%d bytes", len(data))})
	}
	p.mu.Unlock()
	if p.jn != nil {
		if err := p.jn.saveCheckpoint(j.id, index, data); err != nil {
			p.logf(sweepd.KV("jobd.journal_error", "job", j.id, "op", "checkpoint", "point", index, "err", err))
		}
	}
}

// groupDone handles a RunGroup return: clean completion, worker death with
// requeue, or cancellation.
func (p *Platform) groupDone(j *job, gs *groupState, w sweepd.Worker, err error) {
	p.mu.Lock()
	if ws := p.workers[w]; ws != nil {
		ws.busy--
	}
	gs.assigned = false
	ctxErr := j.ctx.Err()
	complete := len(gs.done) == len(gs.g.Indices)
	if err == nil && !complete && ctxErr == nil {
		// Same contract as the one-job scheduler: a worker either finishes
		// its group or reports failure; silently returning early is death,
		// so a buggy worker cannot requeue-loop forever.
		err = errors.New("jobd: worker returned without completing its group")
	}
	if err != nil && ctxErr == nil {
		if ws := p.workers[w]; ws != nil {
			ws.dead = true
		}
		if !complete {
			p.requeues++
			p.spanLocked(j, TraceSpan{Event: SpanRequeue, Point: -1,
				Group: gs.g.KeyID, Worker: workerLabel(w),
				Points: len(gs.g.Indices) - len(gs.done), Detail: err.Error()})
			p.logf(sweepd.KV("jobd.group_requeued", "job", j.id, "tenant", j.tenant,
				"group", gs.g.KeyID, "remaining", len(gs.g.Indices)-len(gs.done),
				"worker", workerLabel(w), "err", err))
		}
	}
	if !j.state.Terminal() && j.completed == len(j.sj.Points) {
		p.finalizeLocked(j, StateDone, "")
	}
	p.mu.Unlock()
	p.Kick()
}

// --- recovery ---------------------------------------------------------------

// recover replays the journal into the platform: terminal jobs become
// queryable history, unfinished jobs re-enter the queue with completed
// points pinned and persisted checkpoints seeded for mid-run resume.
func (p *Platform) recover() error {
	recs, err := p.jn.load()
	if err != nil {
		return err
	}
	sort.Slice(recs, func(a, b int) bool { return recs[a].spec.Seq < recs[b].spec.Seq })
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, rec := range recs {
		if rec.spec.Seq > p.seq {
			p.seq = rec.spec.Seq
		}
		sj, err := sweepd.JobFromWire(rec.spec.Job)
		if err != nil {
			// A journaled job this build cannot materialize (schema drift,
			// hand-edited journal) is surfaced as failed, not silently
			// dropped and not a crash loop.
			p.logf(sweepd.KV("jobd.recover_failed", "job", rec.spec.ID, "err", err))
			continue
		}
		sj.CheckpointBudget = p.opts.CheckpointBudget
		sj.TelemetryEvery = p.telemetryEvery()
		j := p.newJobLocked(rec.spec.ID, rec.spec.Tenant, rec.spec.Priority,
			rec.spec.Seq, rec.spec.Submitted, rec.spec.Job, sj)
		for _, wr := range rec.results {
			if wr.Index < 0 || wr.Index >= len(j.results) || j.results[wr.Index] != nil {
				continue
			}
			gs := j.groupOf[wr.Index]
			gs.done[wr.Index] = true
			j.results[wr.Index] = wr
			j.completedOrder = append(j.completedOrder, wr.Index)
			j.completed++
		}
		p.registerLocked(j)
		if rec.terminal != "" {
			j.state = rec.terminal
			j.err = rec.terminalErr
			j.cancel()
			close(j.done)
			continue
		}
		t := p.tenantLocked(j.tenant)
		t.queued++
		p.recoveredJobs++
		p.recoveredPoints += j.completed
		for idx, data := range rec.ckpts {
			if idx < 0 || idx >= len(j.results) || j.results[idx] != nil {
				continue
			}
			j.ckpts.Put(idx, data)
			p.recoveredCkpts++
		}
		// The trace is ephemeral: a recovered job's span log restarts here,
		// its pre-crash spans gone with the process that recorded them.
		p.spanLocked(j, TraceSpan{Event: SpanRecovered, State: StateQueued, Point: -1,
			Points: j.completed,
			Detail: fmt.Sprintf("%d/%d points done, %d checkpoints", j.completed, len(j.sj.Points), len(rec.ckpts))})
		if j.completed == len(j.sj.Points) {
			// Crashed between the last result and the terminal marker.
			p.finalizeLocked(j, StateDone, "")
			continue
		}
		p.logf(sweepd.KV("jobd.job_recovered", "job", j.id, "tenant", j.tenant,
			"completed", j.completed, "total", len(j.sj.Points),
			"checkpoints", len(rec.ckpts)))
	}
	return nil
}

// sweepResultsOf converts a completed job's wire results back to scheduler
// results (tests compare them against local sweep references).
func sweepResultsOf(j *sweepd.Job, wrs []*sweepd.WireResult) ([]sweep.Result, error) {
	out := make([]sweep.Result, len(wrs))
	for i, wr := range wrs {
		if wr == nil {
			return nil, fmt.Errorf("jobd: point %d has no result", i)
		}
		out[i] = sweep.Result{Point: j.Points[i]}
		if wr.Err != "" {
			out[i].Err = errors.New(wr.Err)
		} else if wr.Res != nil {
			out[i].Res = wr.Res.Result(j.Points[i].Config)
		}
	}
	return out, nil
}
