// HTTP/JSON front door for the job platform. Deliberately plain net/http:
// bearer-token tenant auth, JSON request/response bodies, NDJSON result
// streaming, and a Prometheus-style text /metrics. The route set:
//
//	POST   /v1/jobs                submit (201; 400/401/429 on rejection)
//	GET    /v1/jobs                list the tenant's jobs
//	GET    /v1/jobs/{id}           status + per-point progress
//	GET    /v1/jobs/{id}/results   stream results as NDJSON until terminal
//	GET    /v1/jobs/{id}/telemetry stream live interval snapshots as NDJSON
//	GET    /v1/jobs/{id}/trace     stream lifecycle spans as NDJSON
//	DELETE /v1/jobs/{id}           cancel
//	GET    /healthz                liveness (no auth)
//	GET    /metrics                obs registry, Prometheus text (no auth)
package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/sweepd"
)

// maxSubmitBytes bounds one submission body; a thousand-point sweep is
// well under a megabyte of specs, so 64 MiB rejects only abuse.
const maxSubmitBytes = 64 << 20

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// streamEnd is the final NDJSON line of a results or telemetry stream.
type streamEnd struct {
	Done  bool   `json:"done"`
	State State  `json:"state"`
	Err   string `json:"err,omitempty"`
}

// telemetryLine is one NDJSON line of a telemetry stream.
type telemetryLine struct {
	Telemetry *core.IntervalSnapshot `json:"telemetry"`
}

// traceLine is one NDJSON line of a lifecycle trace stream.
type traceLine struct {
	Span *TraceSpan `json:"span"`
}

// Handler returns the platform's HTTP front door.
func (p *Platform) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", p.withTenant(p.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", p.withTenant(p.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", p.withTenant(p.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/results", p.withTenant(p.handleResults))
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", p.withTenant(p.handleTelemetry))
	mux.HandleFunc("GET /v1/jobs/{id}/trace", p.withTenant(p.handleTrace))
	mux.HandleFunc("DELETE /v1/jobs/{id}", p.withTenant(p.handleCancel))
	return mux
}

// withTenant authenticates the request's bearer token to a tenant name.
func (p *Platform) withTenant(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := ""
		if auth := r.Header.Get("Authorization"); auth != "" {
			var ok bool
			token, ok = strings.CutPrefix(auth, "Bearer ")
			if !ok {
				writeError(w, http.StatusUnauthorized, "jobd: Authorization header is not a bearer token")
				return
			}
		}
		tenant, ok := p.TenantForToken(token)
		if !ok {
			writeError(w, http.StatusUnauthorized, "jobd: unknown token")
			return
		}
		h(w, r, tenant)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// writePlatformError maps platform errors onto HTTP statuses.
func writePlatformError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		// Admission control: the work was refused whole, not dropped —
		// back off and resubmit. The platform derives the advice from
		// live queue/tenant state (RetryAfterError); 1s is only the
		// fallback for rejections that carry none.
		secs := 1
		var ra *RetryAfterError
		if errors.As(err, &ra) && ra.Seconds > 0 {
			secs = ra.Seconds
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (p *Platform) handleSubmit(w http.ResponseWriter, r *http.Request, tenant string) {
	// Injection point for the chaos suite's 429 storm: a deterministic
	// schedule refuses the first N submissions the way a saturated
	// platform would, exercising the client's Retry-After handling.
	if err := p.opts.Faults.At(faultHTTPSubmit); err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "jobd: injected overload: "+err.Error())
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "jobd: decode submission: "+err.Error())
		return
	}
	st, err := p.Submit(tenant, req)
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (p *Platform) handleList(w http.ResponseWriter, r *http.Request, tenant string) {
	jobs := p.List(tenant)
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (p *Platform) handleStatus(w http.ResponseWriter, r *http.Request, tenant string) {
	st, err := p.Status(tenant, r.PathValue("id"))
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (p *Platform) handleCancel(w http.ResponseWriter, r *http.Request, tenant string) {
	st, err := p.Cancel(tenant, r.PathValue("id"))
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams the job's results as NDJSON — one WireResult line
// per completed point in completion order, flushed as they land, then a
// terminal {"done":true,...} line. A client connecting mid-job first
// catches up, then follows.
func (p *Platform) handleResults(w http.ResponseWriter, r *http.Request, tenant string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	state, errStr, err := p.StreamResults(r.Context(), tenant, r.PathValue("id"),
		func(wr *sweepd.WireResult) error {
			if err := enc.Encode(resultLine{Result: wr}); err != nil {
				return err
			}
			wrote = true
			return rc.Flush()
		})
	if err != nil {
		if !wrote && errors.Is(err, ErrUnknownJob) {
			writePlatformError(w, err)
		}
		// Mid-stream failure (client went away, platform closing): the
		// stream just ends without its terminal line, which tells the
		// client it must reconnect.
		return
	}
	enc.Encode(streamEnd{Done: true, State: state, Err: errStr})
	rc.Flush()
}

// handleTelemetry streams the job's live interval snapshots as NDJSON —
// one {"telemetry":{...}} line per snapshot, flushed as they land, then a
// terminal {"done":true,...} line. A client connecting mid-job first
// replays the buffered ring, then follows live; a client too slow to keep
// up loses wrapped-past snapshots (counted in /metrics) rather than ever
// stalling the simulation.
func (p *Platform) handleTelemetry(w http.ResponseWriter, r *http.Request, tenant string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	state, errStr, err := p.StreamTelemetry(r.Context(), tenant, r.PathValue("id"),
		func(snap core.IntervalSnapshot) error {
			if err := enc.Encode(telemetryLine{Telemetry: &snap}); err != nil {
				return err
			}
			wrote = true
			return rc.Flush()
		})
	if err != nil {
		if !wrote && errors.Is(err, ErrUnknownJob) {
			writePlatformError(w, err)
		}
		// Mid-stream failure: the stream ends without its terminal line,
		// telling the client it must reconnect.
		return
	}
	enc.Encode(streamEnd{Done: true, State: state, Err: errStr})
	rc.Flush()
}

// handleTrace streams the job's lifecycle spans as NDJSON — one
// {"span":{...}} line per recorded event, flushed as they land, then a
// terminal {"done":true,...} line. Same auth and ownership rules as the
// result stream; same catch-up-then-follow contract as telemetry. Traces
// are ephemeral: spans evicted from the bounded per-job log (or lost to a
// restart) are absent, and Seq gaps reveal it.
func (p *Platform) handleTrace(w http.ResponseWriter, r *http.Request, tenant string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	state, errStr, err := p.StreamTrace(r.Context(), tenant, r.PathValue("id"),
		func(s TraceSpan) error {
			if err := enc.Encode(traceLine{Span: &s}); err != nil {
				return err
			}
			wrote = true
			return rc.Flush()
		})
	if err != nil {
		if !wrote && errors.Is(err, ErrUnknownJob) {
			writePlatformError(w, err)
		}
		// Mid-stream failure: the stream ends without its terminal line,
		// telling the client it must reconnect.
		return
	}
	enc.Encode(streamEnd{Done: true, State: state, Err: errStr})
	rc.Flush()
}

func (p *Platform) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, ErrClosed.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the platform's obs registry in the Prometheus
// text exposition format. One consistent Platform.Snapshot is applied to
// the snapshot-backed families first, so every jobd series a single scrape
// returns describes the same instant; the event-site histograms and any
// other layers sharing the registry (sweepd, tracecache via
// Options.Metrics) render from their own live state.
func (p *Platform) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p.metrics.apply(p.Snapshot())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.reg.WritePrometheus(w) //nolint:errcheck // client gone mid-scrape
}

// LoadTenants reads a {"tenants":[...]} JSON file.
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("jobd: parse tenants file %s: %w", path, err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("jobd: tenants file %s defines no tenants", path)
	}
	for _, t := range f.Tenants {
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("jobd: tenants file %s: every tenant needs a name and a token", path)
		}
	}
	return f.Tenants, nil
}
