// HTTP/JSON front door for the job platform. Deliberately plain net/http:
// bearer-token tenant auth, JSON request/response bodies, NDJSON result
// streaming, and a Prometheus-style text /metrics. The route set:
//
//	POST   /v1/jobs                submit (201; 400/401/429 on rejection)
//	GET    /v1/jobs                list the tenant's jobs
//	GET    /v1/jobs/{id}           status + per-point progress
//	GET    /v1/jobs/{id}/results   stream results as NDJSON until terminal
//	GET    /v1/jobs/{id}/telemetry stream live interval snapshots as NDJSON
//	DELETE /v1/jobs/{id}           cancel
//	GET    /healthz                liveness (no auth)
//	GET    /metrics                platform counters (no auth)
package jobd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sweepd"
)

// maxSubmitBytes bounds one submission body; a thousand-point sweep is
// well under a megabyte of specs, so 64 MiB rejects only abuse.
const maxSubmitBytes = 64 << 20

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// streamEnd is the final NDJSON line of a results or telemetry stream.
type streamEnd struct {
	Done  bool   `json:"done"`
	State State  `json:"state"`
	Err   string `json:"err,omitempty"`
}

// telemetryLine is one NDJSON line of a telemetry stream.
type telemetryLine struct {
	Telemetry *core.IntervalSnapshot `json:"telemetry"`
}

// Handler returns the platform's HTTP front door.
func (p *Platform) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("POST /v1/jobs", p.withTenant(p.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", p.withTenant(p.handleList))
	mux.HandleFunc("GET /v1/jobs/{id}", p.withTenant(p.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/results", p.withTenant(p.handleResults))
	mux.HandleFunc("GET /v1/jobs/{id}/telemetry", p.withTenant(p.handleTelemetry))
	mux.HandleFunc("DELETE /v1/jobs/{id}", p.withTenant(p.handleCancel))
	return mux
}

// withTenant authenticates the request's bearer token to a tenant name.
func (p *Platform) withTenant(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		token := ""
		if auth := r.Header.Get("Authorization"); auth != "" {
			var ok bool
			token, ok = strings.CutPrefix(auth, "Bearer ")
			if !ok {
				writeError(w, http.StatusUnauthorized, "jobd: Authorization header is not a bearer token")
				return
			}
		}
		tenant, ok := p.TenantForToken(token)
		if !ok {
			writeError(w, http.StatusUnauthorized, "jobd: unknown token")
			return
		}
		h(w, r, tenant)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorBody{Error: msg})
}

// writePlatformError maps platform errors onto HTTP statuses.
func writePlatformError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantBusy):
		// Admission control: the work was refused whole, not dropped —
		// back off and resubmit.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (p *Platform) handleSubmit(w http.ResponseWriter, r *http.Request, tenant string) {
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBytes))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "jobd: decode submission: "+err.Error())
		return
	}
	st, err := p.Submit(tenant, req)
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (p *Platform) handleList(w http.ResponseWriter, r *http.Request, tenant string) {
	jobs := p.List(tenant)
	if jobs == nil {
		jobs = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (p *Platform) handleStatus(w http.ResponseWriter, r *http.Request, tenant string) {
	st, err := p.Status(tenant, r.PathValue("id"))
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (p *Platform) handleCancel(w http.ResponseWriter, r *http.Request, tenant string) {
	st, err := p.Cancel(tenant, r.PathValue("id"))
	if err != nil {
		writePlatformError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleResults streams the job's results as NDJSON — one WireResult line
// per completed point in completion order, flushed as they land, then a
// terminal {"done":true,...} line. A client connecting mid-job first
// catches up, then follows.
func (p *Platform) handleResults(w http.ResponseWriter, r *http.Request, tenant string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	state, errStr, err := p.StreamResults(r.Context(), tenant, r.PathValue("id"),
		func(wr *sweepd.WireResult) error {
			if err := enc.Encode(resultLine{Result: wr}); err != nil {
				return err
			}
			wrote = true
			return rc.Flush()
		})
	if err != nil {
		if !wrote && errors.Is(err, ErrUnknownJob) {
			writePlatformError(w, err)
		}
		// Mid-stream failure (client went away, platform closing): the
		// stream just ends without its terminal line, which tells the
		// client it must reconnect.
		return
	}
	enc.Encode(streamEnd{Done: true, State: state, Err: errStr})
	rc.Flush()
}

// handleTelemetry streams the job's live interval snapshots as NDJSON —
// one {"telemetry":{...}} line per snapshot, flushed as they land, then a
// terminal {"done":true,...} line. A client connecting mid-job first
// replays the buffered ring, then follows live; a client too slow to keep
// up loses wrapped-past snapshots (counted in /metrics) rather than ever
// stalling the simulation.
func (p *Platform) handleTelemetry(w http.ResponseWriter, r *http.Request, tenant string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	wrote := false
	state, errStr, err := p.StreamTelemetry(r.Context(), tenant, r.PathValue("id"),
		func(snap core.IntervalSnapshot) error {
			if err := enc.Encode(telemetryLine{Telemetry: &snap}); err != nil {
				return err
			}
			wrote = true
			return rc.Flush()
		})
	if err != nil {
		if !wrote && errors.Is(err, ErrUnknownJob) {
			writePlatformError(w, err)
		}
		// Mid-stream failure: the stream ends without its terminal line,
		// telling the client it must reconnect.
		return
	}
	enc.Encode(streamEnd{Done: true, State: state, Err: errStr})
	rc.Flush()
}

func (p *Platform) handleHealthz(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, ErrClosed.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the Metrics snapshot in the Prometheus text
// exposition format (hand-rolled; no client library dependency).
func (p *Platform) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := p.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP jobd_queue_depth Jobs waiting for their first dispatch.\n")
	fmt.Fprintf(w, "# TYPE jobd_queue_depth gauge\njobd_queue_depth %d\n", m.QueueDepth)
	fmt.Fprintf(w, "# HELP jobd_workers Live workers in the pool.\n")
	fmt.Fprintf(w, "# TYPE jobd_workers gauge\njobd_workers %d\n", m.Workers)
	fmt.Fprintf(w, "# TYPE jobd_workers_dead gauge\njobd_workers_dead %d\n", m.DeadWorkers)
	writeTenantGauge(w, "jobd_tenant_jobs_queued", m.QueuedByTenant)
	writeTenantGauge(w, "jobd_tenant_jobs_running", m.RunningByTenant)
	fmt.Fprintf(w, "# HELP jobd_jobs Jobs by lifecycle state.\n# TYPE jobd_jobs gauge\n")
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		fmt.Fprintf(w, "jobd_jobs{state=%q} %d\n", string(s), m.JobsByState[s])
	}
	fmt.Fprintf(w, "# HELP jobd_group_requeues_total Groups requeued after a worker died.\n")
	fmt.Fprintf(w, "# TYPE jobd_group_requeues_total counter\njobd_group_requeues_total %d\n", m.Requeues)
	fmt.Fprintf(w, "# HELP jobd_resume_points_total Points dispatched with a resume checkpoint attached.\n")
	fmt.Fprintf(w, "# TYPE jobd_resume_points_total counter\njobd_resume_points_total %d\n", m.ResumePoints)
	fmt.Fprintf(w, "# TYPE jobd_recovered_jobs counter\njobd_recovered_jobs %d\n", m.RecoveredJobs)
	fmt.Fprintf(w, "# TYPE jobd_recovered_points counter\njobd_recovered_points %d\n", m.RecoveredPoints)
	fmt.Fprintf(w, "# TYPE jobd_recovered_checkpoints counter\njobd_recovered_checkpoints %d\n", m.RecoveredCkpts)
	fmt.Fprintf(w, "# HELP jobd_admission_rejected_total Submissions refused by admission control.\n")
	fmt.Fprintf(w, "# TYPE jobd_admission_rejected_total counter\njobd_admission_rejected_total %d\n", m.Rejected)
	fmt.Fprintf(w, "# HELP jobd_telemetry_snapshots_total Interval snapshots appended to job telemetry rings.\n")
	fmt.Fprintf(w, "# TYPE jobd_telemetry_snapshots_total counter\njobd_telemetry_snapshots_total %d\n", m.TelemetrySnaps)
	fmt.Fprintf(w, "# HELP jobd_telemetry_dropped_total Snapshots lost to slow telemetry watchers (ring wrap-around).\n")
	fmt.Fprintf(w, "# TYPE jobd_telemetry_dropped_total counter\njobd_telemetry_dropped_total %d\n", m.TelemetryDropped)
	fmt.Fprintf(w, "# HELP jobd_telemetry_clients Currently attached telemetry streams.\n")
	fmt.Fprintf(w, "# TYPE jobd_telemetry_clients gauge\njobd_telemetry_clients %d\n", m.TelemetryClients)
}

func writeTenantGauge(w http.ResponseWriter, name string, byTenant map[string]int) {
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	tenants := make([]string, 0, len(byTenant))
	for t := range byTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Fprintf(w, "%s{tenant=%q} %d\n", name, t, byTenant[t])
	}
}

// LoadTenants reads a {"tenants":[...]} JSON file.
func LoadTenants(path string) ([]Tenant, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f struct {
		Tenants []Tenant `json:"tenants"`
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("jobd: parse tenants file %s: %w", path, err)
	}
	if len(f.Tenants) == 0 {
		return nil, fmt.Errorf("jobd: tenants file %s defines no tenants", path)
	}
	for _, t := range f.Tenants {
		if t.Name == "" || t.Token == "" {
			return nil, fmt.Errorf("jobd: tenants file %s: every tenant needs a name and a token", path)
		}
	}
	return f.Tenants, nil
}
