// Package sched models ReSim's internal pipeline: the decomposition of one
// major cycle (one simulated processor cycle) into minor cycles that pipeline
// ReSim's own stage machinery (paper §IV). Three organizations are modeled:
//
//   - Simple serial execution (Figure 2): Writeback of all N slots, then
//     Lsq_refresh, then the N Issue slots, with Issue split in two steps and
//     a D-cache access slot — 2N+3 minor cycles per major cycle.
//   - Improved (Figure 3): pipelined control lets Issue precede Writeback
//     within the major cycle; a cache access occurs before writeback and
//     bookkeeping occupies the last minor cycle — N+4 minor cycles.
//   - Optimized (Figure 4): Lsq_refresh executes in parallel with the first
//     Issue slot, which is barred from issuing loads; legal when the
//     simulated processor has at most N−1 memory ports — N+3 minor cycles.
//
// The organizations are timing-equivalent for the simulated processor (the
// paper reorganizes "without affecting the overall timing results"); they
// differ in ReSim's own wall-clock speed, i.e. in K = minor cycles per major
// cycle, which internal/fpga turns into simulation MIPS.
package sched

import (
	"fmt"
	"strings"
)

// Organization selects one of the paper's three internal pipelines.
type Organization uint8

// The three organizations of §IV.
const (
	OrgSimple Organization = iota
	OrgImproved
	OrgOptimized
)

// String names the organization.
func (o Organization) String() string {
	switch o {
	case OrgSimple:
		return "simple"
	case OrgImproved:
		return "improved"
	case OrgOptimized:
		return "optimized"
	}
	return fmt.Sprintf("Organization(%d)", uint8(o))
}

// OrgByName parses an organization name ("simple", "improved",
// "optimized") — the single parser behind the CLI flags and the JSON
// configuration file.
func OrgByName(name string) (Organization, error) {
	switch name {
	case "simple":
		return OrgSimple, nil
	case "improved":
		return OrgImproved, nil
	case "optimized":
		return OrgOptimized, nil
	}
	return 0, fmt.Errorf("sched: unknown organization %q (have simple, improved, optimized)", name)
}

// Figure returns the paper figure depicting the organization.
func (o Organization) Figure() int {
	switch o {
	case OrgSimple:
		return 2
	case OrgImproved:
		return 3
	default:
		return 4
	}
}

// MinorCyclesPerMajor returns K for an N-wide simulated processor.
func (o Organization) MinorCyclesPerMajor(n int) int {
	switch o {
	case OrgSimple:
		return 2*n + 3
	case OrgImproved:
		return n + 4
	default:
		return n + 3
	}
}

// LoadBarredFromFirstSlot reports whether the first Issue slot of a major
// cycle may not issue a load (the Optimized organization's restriction).
func (o Organization) LoadBarredFromFirstSlot() bool { return o == OrgOptimized }

// MaxMemPorts returns the largest number of memory ports the organization
// supports for an N-wide processor ("the restriction that the simulated
// processor has up to N-1 memory ports").
func (o Organization) MaxMemPorts(n int) int {
	if o == OrgOptimized {
		return n - 1
	}
	return n
}

// Slot is one stage execution placed at a minor cycle within a major cycle.
type Slot struct {
	Stage string // e.g. "WB0", "LSQR", "IS2", "CA", "BK"
	Minor int    // minor-cycle index within the major cycle, 0-based
	Issue int    // issue-slot index for ISx stages, else -1
	Load  bool   // whether this slot may process load instructions
}

// Schedule is the set of stage executions of the dependence-critical chain
// (Writeback / Lsq_refresh / Issue / cache access / bookkeeping) within one
// major cycle. Fetch, Dispatch and Commit overlap in separate pipeline lanes
// and do not lengthen the major cycle (paper §IV.A: "datapath stage
// dependence decoupling occurs naturally").
type Schedule struct {
	Org   Organization
	Width int
	Slots []Slot
}

// Build constructs the minor-cycle schedule for organization o and width n.
func Build(o Organization, n int) (Schedule, error) {
	if n < 1 {
		return Schedule{}, fmt.Errorf("sched: width %d", n)
	}
	s := Schedule{Org: o, Width: n}
	add := func(stage string, minor, issue int, load bool) {
		s.Slots = append(s.Slots, Slot{Stage: stage, Minor: minor, Issue: issue, Load: load})
	}
	switch o {
	case OrgSimple:
		// WB0..WBn-1, LSQR, IS0..ISn-1, then the second Issue step and the
		// D-cache access drain the pipe ("We have split Issue in two steps
		// independently of instruction type").
		for i := 0; i < n; i++ {
			add(fmt.Sprintf("WB%d", i), i, -1, false)
		}
		add("LSQR", n, -1, false)
		for i := 0; i < n; i++ {
			add(fmt.Sprintf("IS%d", i), n+1+i, i, true)
		}
		add("ISb", 2*n+1, -1, false) // second Issue step (fixed-latency split)
		add("CA", 2*n+2, -1, false)
	case OrgImproved:
		// Issue precedes Writeback within the major cycle (pipelined
		// control); cache access precedes writeback; bookkeeping last.
		add("LSQR", 0, -1, false)
		for i := 0; i < n; i++ {
			add(fmt.Sprintf("IS%d", i), 1+i, i, true)
		}
		add("CA", n+1, -1, false)
		add("WB", n+2, -1, false)
		add("BK", n+3, -1, false)
	case OrgOptimized:
		// Lsq_refresh and the first Issue execute in the same minor cycle;
		// the first Issue does not consider loads.
		add("LSQR", 0, -1, false)
		for i := 0; i < n; i++ {
			add(fmt.Sprintf("IS%d", i), i, i, i != 0)
		}
		add("CA", n, -1, false)
		add("WB", n+1, -1, false)
		add("BK", n+2, -1, false)
	default:
		return Schedule{}, fmt.Errorf("sched: unknown organization %d", o)
	}
	return s, nil
}

// MinorCycles returns the major-cycle latency implied by the slots.
func (s Schedule) MinorCycles() int {
	max := 0
	for _, sl := range s.Slots {
		if sl.Minor+1 > max {
			max = sl.Minor + 1
		}
	}
	return max
}

// find returns the minor cycle of the first slot whose stage matches.
func (s Schedule) find(stage string) (int, bool) {
	for _, sl := range s.Slots {
		if sl.Stage == stage {
			return sl.Minor, true
		}
	}
	return 0, false
}

// Validate checks the §IV dependence constraints:
//
//  1. The slot count matches the organization's published formula.
//  2. Simple: every Writeback precedes Lsq_refresh, which precedes every
//     Issue (the wakeup chain of §IV.A).
//  3. Improved/Optimized: every Issue slot precedes the Writeback slot
//     (pipelined control, §IV.B), the cache access precedes Writeback
//     ("a cache access occurs before writeback to determine whether there
//     is a hit"), and bookkeeping is the last minor cycle.
//  4. Optimized: Lsq_refresh shares minor cycle 0 with the first Issue
//     slot, and that slot does not consider loads.
func (s Schedule) Validate() error {
	if got, want := s.MinorCycles(), s.Org.MinorCyclesPerMajor(s.Width); got != want {
		return fmt.Errorf("sched: %v/%d-wide has %d minor cycles, want %d", s.Org, s.Width, got, want)
	}
	lsqr, ok := s.find("LSQR")
	if !ok {
		return fmt.Errorf("sched: missing LSQR slot")
	}
	switch s.Org {
	case OrgSimple:
		for _, sl := range s.Slots {
			if strings.HasPrefix(sl.Stage, "WB") && sl.Minor >= lsqr {
				return fmt.Errorf("sched: %s at %d not before LSQR at %d", sl.Stage, sl.Minor, lsqr)
			}
			if sl.Issue >= 0 && sl.Minor <= lsqr {
				return fmt.Errorf("sched: %s at %d not after LSQR at %d", sl.Stage, sl.Minor, lsqr)
			}
		}
	case OrgImproved, OrgOptimized:
		wb, ok := s.find("WB")
		if !ok {
			return fmt.Errorf("sched: missing WB slot")
		}
		ca, ok := s.find("CA")
		if !ok {
			return fmt.Errorf("sched: missing CA slot")
		}
		bk, ok := s.find("BK")
		if !ok {
			return fmt.Errorf("sched: missing BK slot")
		}
		if ca >= wb {
			return fmt.Errorf("sched: cache access at %d not before writeback at %d", ca, wb)
		}
		if bk != s.MinorCycles()-1 {
			return fmt.Errorf("sched: bookkeeping at %d is not the last minor cycle", bk)
		}
		for _, sl := range s.Slots {
			if sl.Issue >= 0 && sl.Minor >= wb {
				return fmt.Errorf("sched: issue slot %s at %d not before WB at %d", sl.Stage, sl.Minor, wb)
			}
		}
		if s.Org == OrgOptimized {
			is0, _ := s.find("IS0")
			if is0 != lsqr {
				return fmt.Errorf("sched: IS0 at %d not co-scheduled with LSQR at %d", is0, lsqr)
			}
			for _, sl := range s.Slots {
				if sl.Issue == 0 && sl.Load {
					return fmt.Errorf("sched: first issue slot may not consider loads")
				}
			}
		}
	}
	return nil
}

// Render draws the schedule as an ASCII minor-cycle grid, the textual
// equivalent of paper Figures 2-4.
func (s Schedule) Render() string {
	k := s.MinorCycles()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v organization, %d-wide: major cycle = %d minor cycles (Figure %d)\n",
		s.Org, s.Width, k, s.Org.Figure())
	sb.WriteString("minor      ")
	for m := 0; m < k; m++ {
		fmt.Fprintf(&sb, "|%4d ", m)
	}
	sb.WriteString("|\n")
	// One row per distinct stage, in first-execution order.
	seen := map[string]bool{}
	var order []string
	for _, sl := range s.Slots {
		if !seen[sl.Stage] {
			seen[sl.Stage] = true
			order = append(order, sl.Stage)
		}
	}
	for _, stage := range order {
		fmt.Fprintf(&sb, "%-11s", stage)
		for m := 0; m < k; m++ {
			mark := "     "
			for _, sl := range s.Slots {
				if sl.Stage == stage && sl.Minor == m {
					if sl.Issue >= 0 && !sl.Load {
						mark = " ██* " // issue slot barred from loads
					} else {
						mark = " ███ "
					}
				}
			}
			sb.WriteString("|" + mark)
		}
		sb.WriteString("|\n")
	}
	if s.Org == OrgOptimized {
		sb.WriteString("(* = first Issue slot does not consider loads; requires <= N-1 memory ports)\n")
	}
	return sb.String()
}
