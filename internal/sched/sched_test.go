package sched

import (
	"strings"
	"testing"
)

func TestPaperLatencyFormulas(t *testing.T) {
	// §IV: Simple = 2N+3 ("or 11 for our 4-wide example"), Improved = N+4,
	// Optimized = N+3. Table 1 uses N+3=7 (4-issue) and N+4=6 (2-issue).
	cases := []struct {
		org  Organization
		n    int
		want int
	}{
		{OrgSimple, 4, 11},
		{OrgImproved, 4, 8},
		{OrgOptimized, 4, 7},
		{OrgImproved, 2, 6}, // Table 1 right: "N+4=6 cycles"
		{OrgOptimized, 2, 5},
		{OrgSimple, 2, 7},
		{OrgOptimized, 8, 11},
	}
	for _, c := range cases {
		if got := c.org.MinorCyclesPerMajor(c.n); got != c.want {
			t.Errorf("%v width %d: K = %d, want %d", c.org, c.n, got, c.want)
		}
		s, err := Build(c.org, c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MinorCycles(); got != c.want {
			t.Errorf("%v width %d: schedule K = %d, want %d", c.org, c.n, got, c.want)
		}
	}
}

func TestSchedulesValidate(t *testing.T) {
	for _, org := range []Organization{OrgSimple, OrgImproved, OrgOptimized} {
		for _, n := range []int{1, 2, 4, 8} {
			s, err := Build(org, n)
			if err != nil {
				t.Fatalf("%v/%d: %v", org, n, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%v/%d: %v", org, n, err)
			}
		}
	}
}

func TestBuildRejectsBadWidth(t *testing.T) {
	if _, err := Build(OrgSimple, 0); err == nil {
		t.Error("width 0 accepted")
	}
}

func TestSimpleOrderingWBThenLSQRThenIssue(t *testing.T) {
	s, _ := Build(OrgSimple, 4)
	var maxWB, lsqr, minIS int
	minIS = 1 << 30
	for _, sl := range s.Slots {
		switch {
		case strings.HasPrefix(sl.Stage, "WB"):
			if sl.Minor > maxWB {
				maxWB = sl.Minor
			}
		case sl.Stage == "LSQR":
			lsqr = sl.Minor
		case sl.Issue >= 0:
			if sl.Minor < minIS {
				minIS = sl.Minor
			}
		}
	}
	if !(maxWB < lsqr && lsqr < minIS) {
		t.Errorf("simple ordering broken: WB<=%d LSQR=%d IS>=%d", maxWB, lsqr, minIS)
	}
}

func TestImprovedIssueBeforeWriteback(t *testing.T) {
	s, _ := Build(OrgImproved, 4)
	wb, _ := s.find("WB")
	for _, sl := range s.Slots {
		if sl.Issue >= 0 && sl.Minor >= wb {
			t.Errorf("issue slot %s at %d not before WB at %d", sl.Stage, sl.Minor, wb)
		}
	}
	// Cache access determines hit/miss before writeback (§IV.B).
	ca, _ := s.find("CA")
	if ca >= wb {
		t.Errorf("CA at %d not before WB at %d", ca, wb)
	}
}

func TestOptimizedRestrictions(t *testing.T) {
	s, _ := Build(OrgOptimized, 4)
	lsqr, _ := s.find("LSQR")
	is0, _ := s.find("IS0")
	if lsqr != is0 || lsqr != 0 {
		t.Errorf("LSQR at %d, IS0 at %d, want both at 0", lsqr, is0)
	}
	for _, sl := range s.Slots {
		if sl.Issue == 0 && sl.Load {
			t.Error("first issue slot allows loads")
		}
		if sl.Issue > 0 && !sl.Load {
			t.Errorf("issue slot %d should allow loads", sl.Issue)
		}
	}
	if !OrgOptimized.LoadBarredFromFirstSlot() {
		t.Error("LoadBarredFromFirstSlot false for optimized")
	}
	if OrgImproved.LoadBarredFromFirstSlot() || OrgSimple.LoadBarredFromFirstSlot() {
		t.Error("LoadBarredFromFirstSlot true for non-optimized")
	}
}

func TestMaxMemPorts(t *testing.T) {
	if got := OrgOptimized.MaxMemPorts(4); got != 3 {
		t.Errorf("optimized max ports = %d, want 3", got)
	}
	if got := OrgImproved.MaxMemPorts(4); got != 4 {
		t.Errorf("improved max ports = %d, want 4", got)
	}
	if got := OrgSimple.MaxMemPorts(2); got != 2 {
		t.Errorf("simple max ports = %d, want 2", got)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	// Move IS0 after WB in the improved schedule: must fail.
	s, _ := Build(OrgImproved, 2)
	for i := range s.Slots {
		if s.Slots[i].Stage == "IS0" {
			s.Slots[i].Minor = s.MinorCycles() - 1
		}
	}
	if err := s.Validate(); err == nil {
		t.Error("corrupted schedule validated")
	}
	// Wrong K.
	s2, _ := Build(OrgOptimized, 4)
	s2.Slots = append(s2.Slots, Slot{Stage: "EXTRA", Minor: 99, Issue: -1})
	if err := s2.Validate(); err == nil {
		t.Error("over-long schedule validated")
	}
}

func TestRenderShape(t *testing.T) {
	for _, org := range []Organization{OrgSimple, OrgImproved, OrgOptimized} {
		s, _ := Build(org, 4)
		out := s.Render()
		if !strings.Contains(out, "minor") {
			t.Errorf("%v render missing header:\n%s", org, out)
		}
		if !strings.Contains(out, "LSQR") {
			t.Errorf("%v render missing LSQR lane:\n%s", org, out)
		}
		wantFig := map[Organization]string{
			OrgSimple: "Figure 2", OrgImproved: "Figure 3", OrgOptimized: "Figure 4",
		}[org]
		if !strings.Contains(out, wantFig) {
			t.Errorf("%v render missing %q:\n%s", org, wantFig, out)
		}
	}
	// Optimized render marks the no-load first slot.
	s, _ := Build(OrgOptimized, 4)
	if !strings.Contains(s.Render(), "██*") {
		t.Error("optimized render missing no-load marker")
	}
}

func TestOrganizationStrings(t *testing.T) {
	if OrgSimple.String() != "simple" || OrgImproved.String() != "improved" || OrgOptimized.String() != "optimized" {
		t.Error("organization names wrong")
	}
	if OrgSimple.Figure() != 2 || OrgImproved.Figure() != 3 || OrgOptimized.Figure() != 4 {
		t.Error("figure numbers wrong")
	}
}
