// Package resim is a Go reproduction of "ReSim, a Trace-Driven,
// Reconfigurable ILP Processor Simulator" (Fytraki & Pnevmatikatos,
// DATE 2009): a cycle-accurate, trace-driven timing simulator for an
// out-of-order, superscalar, speculative processor, together with the
// substrates the paper's evaluation depends on — a SimpleScalar-style
// functional simulator and trace generator, a parameterizable branch
// predictor, timing-only caches, synthetic SPECINT-like workloads, the
// minor-cycle internal pipeline organizations of §IV, and an FPGA
// throughput/area model calibrated against the published results.
//
// Quick start:
//
//	cfg := resim.DefaultConfig()                     // the paper's 4-wide machine
//	res, err := resim.SimulateWorkload(cfg, "gzip", 200_000)
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f -> %.1f simulation MIPS on Virtex-5\n",
//		res.IPC(), resim.SimulationMIPS(resim.Virtex5, cfg, res))
//
// The cmd/resim, cmd/tracegen and cmd/resim-bench tools and the examples/
// directory exercise this API; internal packages carry the implementation.
package resim

import (
	"fmt"
	"io"
	"os"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/funcsim"
	"repro/internal/multicore"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Core configuration and results.
type (
	// Config parameterizes the simulated processor and engine organization.
	Config = core.Config
	// Result is the outcome of a simulation run.
	Result = core.Result
	// PredictorConfig parameterizes the branch predictor block.
	PredictorConfig = bpred.Config
	// CacheConfig describes one timing-only cache.
	CacheConfig = cache.Config
	// CacheModel is the memory-system interface (hit/miss + latency) the
	// engine consumes; assign to Config.ICache / Config.DCache.
	CacheModel = cache.Model
	// Organization selects the internal minor-cycle pipeline (§IV).
	Organization = sched.Organization
	// Workload is a synthetic SPECINT-like benchmark profile.
	Workload = workload.Profile
	// Device is an FPGA device model.
	Device = fpga.Device
	// AreaBreakdown is a per-stage FPGA resource estimate (Table 4).
	AreaBreakdown = fpga.Breakdown
	// Record is one pre-decoded trace record (formats B, M and O).
	Record = trace.Record
	// Source yields trace records to the engine.
	Source = trace.Source
)

// The three internal pipeline organizations (paper Figures 2-4).
const (
	OrgSimple    = sched.OrgSimple    // 2N+3 minor cycles per major cycle
	OrgImproved  = sched.OrgImproved  // N+4
	OrgOptimized = sched.OrgOptimized // N+3, needs <= N-1 memory ports
)

// The evaluation's FPGA devices.
var (
	Virtex4 = fpga.Virtex4 // xc4vlx40, 84 MHz minor clock
	Virtex5 = fpga.Virtex5 // xc5vlx50t, 105 MHz minor clock
)

// DefaultConfig returns the paper's evaluated 4-way configuration: RB 16,
// LSQ 8, 4 ALU + 1 MUL + 1 DIV, two-level branch predictor, perfect memory,
// Optimized (N+3) organization.
func DefaultConfig() Config { return core.DefaultConfig() }

// FASTComparisonConfig returns the 2-issue configuration of Table 1's right
// portion: perfect branch prediction and 32 KB 8-way L1 caches.
func FASTComparisonConfig() Config { return core.FASTComparisonConfig() }

// NewL1Cache attaches a timing-only set-associative cache built from cfg to
// a Config (assign to Config.ICache / Config.DCache).
func NewL1Cache(cfg CacheConfig) (CacheModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// Workloads returns the five SPECINT CPU2000 stand-in profiles in Table 1
// row order (gzip, bzip2, parser, vortex, vpr).
func Workloads() []Workload { return workload.Profiles() }

// WorkloadByName returns the named profile.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// SimulateWorkload generates the named workload's trace on the fly (the
// functional-simulator coupling of the paper's future work) and simulates
// up to limit correct-path instructions through the engine.
func SimulateWorkload(cfg Config, name string, limit uint64) (Result, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return Result{}, err
	}
	src, err := p.NewSource(traceConfigFor(cfg), limit)
	if err != nil {
		return Result{}, err
	}
	eng, err := core.New(cfg, src, funcsim.CodeBase)
	if err != nil {
		return Result{}, err
	}
	return eng.Run()
}

// Simulate runs the engine over an arbitrary record source starting at
// startPC.
func Simulate(cfg Config, src Source, startPC uint32) (Result, error) {
	eng, err := core.New(cfg, src, startPC)
	if err != nil {
		return Result{}, err
	}
	return eng.Run()
}

// TraceStats summarizes a generated trace file.
type TraceStats struct {
	Records      uint64
	WrongPath    uint64
	Bits         uint64
	BitsPerInstr float64
}

// WriteWorkloadTrace generates a ReSim trace for the named workload into w
// (container format: header + bit-packed B/M/O records). The predictor
// configuration of cfg drives wrong-path block generation, mirroring
// sim-bpred.
func WriteWorkloadTrace(w io.Writer, cfg Config, name string, limit uint64) (TraceStats, error) {
	return writeWorkloadTrace(w, cfg, name, limit, false)
}

// WriteCompressedWorkloadTrace is WriteWorkloadTrace with the delta-coded
// container (see internal/trace): typically ~1.4x smaller, bringing the
// paper's trace-bandwidth demand under gigabit Ethernet.
func WriteCompressedWorkloadTrace(w io.Writer, cfg Config, name string, limit uint64) (TraceStats, error) {
	return writeWorkloadTrace(w, cfg, name, limit, true)
}

// traceSink abstracts the two container writers.
type traceSink interface {
	Write(trace.Record) error
	Close() error
	Records() uint64
	BitsWritten() uint64
	BitsPerRecord() float64
}

func writeWorkloadTrace(w io.Writer, cfg Config, name string, limit uint64, compress bool) (TraceStats, error) {
	p, err := workload.ByName(name)
	if err != nil {
		return TraceStats{}, err
	}
	prog, err := p.Build()
	if err != nil {
		return TraceStats{}, err
	}
	m, err := funcsim.NewMachine(prog, 0)
	if err != nil {
		return TraceStats{}, err
	}
	var (
		sink   traceSink
		tagged uint64
	)
	hdr := trace.Header{StartPC: prog.Entry}
	if compress {
		sink, err = trace.NewCompressedWriter(w, hdr)
	} else {
		sink, err = trace.NewWriter(w, hdr)
	}
	if err != nil {
		return TraceStats{}, err
	}
	tr := funcsim.NewTracer(m, traceConfigFor(cfg))
	if _, err := tr.Run(limit, func(r trace.Record) error {
		if r.Tag {
			tagged++
		}
		return sink.Write(r)
	}); err != nil {
		return TraceStats{}, err
	}
	if err := sink.Close(); err != nil {
		return TraceStats{}, err
	}
	return TraceStats{
		Records:      sink.Records(),
		WrongPath:    tagged,
		Bits:         sink.BitsWritten(),
		BitsPerInstr: sink.BitsPerRecord(),
	}, nil
}

// SimulateTraceFile opens a trace container previously produced by
// WriteWorkloadTrace, WriteCompressedWorkloadTrace or cmd/tracegen — the
// format is auto-detected — and simulates it.
func SimulateTraceFile(cfg Config, path string) (Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	src, hdr, err := trace.Open(f)
	if err != nil {
		return Result{}, err
	}
	return Simulate(cfg, src, hdr.StartPC)
}

// SimulationMIPS converts a result's IPC into modeled wall-clock simulation
// throughput on dev: MinorClockMHz / K(width) x IPC (Table 1's model).
func SimulationMIPS(dev Device, cfg Config, res Result) float64 {
	return fpga.SimulationMIPS(dev, cfg.MinorCyclesPerMajor(), res.IPC())
}

// EstimateArea produces the Table 4 per-stage FPGA resource estimate.
func EstimateArea(cfg Config) (AreaBreakdown, error) { return fpga.EstimateArea(cfg) }

// RenderPipeline renders the minor-cycle schedule of the given organization
// for an n-wide processor (the ASCII equivalent of Figures 2-4).
func RenderPipeline(org Organization, n int) (string, error) {
	s, err := sched.Build(org, n)
	if err != nil {
		return "", err
	}
	if err := s.Validate(); err != nil {
		return "", err
	}
	return s.Render(), nil
}

// SweepPoint is one named design point of a bulk sweep.
type SweepPoint = sweep.Point

// SweepResult pairs a design point with its simulation outcome.
type SweepResult = sweep.Result

// SweepGrid derives one design point per value from base; names are
// "prefix=value".
func SweepGrid(prefix string, base Config, values []int, apply func(*Config, int)) []SweepPoint {
	return sweep.Grid(prefix, base, values, apply)
}

// RunSweep simulates every design point over the named workload in parallel
// across host cores (the paper's bulk design-space exploration use case);
// results come back in point order, deterministic regardless of
// parallelism.
func RunSweep(workloadName string, instructions uint64, points []SweepPoint) ([]SweepResult, error) {
	p, err := workload.ByName(workloadName)
	if err != nil {
		return nil, err
	}
	return sweep.Runner{Workload: p, Instructions: instructions}.Run(points)
}

// MulticoreResult is the outcome of a lockstep multi-instance simulation.
type MulticoreResult = multicore.Result

// MulticoreOptions configures SimulateMulticore.
type MulticoreOptions struct {
	// Workloads names one profile per simulated core.
	Workloads []string
	// Limit bounds correct-path instructions per core (0 = run to HALT).
	Limit uint64
	// SharedL2, when non-nil, backs every core's private L1 data cache
	// with one shared L2, modeling inter-core cache interference. L1 must
	// then be set too.
	SharedL2 *CacheConfig
	// L1 is the private data-cache geometry used with SharedL2.
	L1 *CacheConfig
}

// SimulateMulticore runs one ReSim instance per workload in lockstep major
// cycles — the paper's future-work mode of fitting multiple instances in
// one FPGA (§VI). Every core uses cfg (width, predictor, organization).
func SimulateMulticore(cfg Config, opts MulticoreOptions) (MulticoreResult, error) {
	if len(opts.Workloads) == 0 {
		return MulticoreResult{}, fmt.Errorf("resim: no workloads given")
	}
	var shared CacheModel
	if opts.SharedL2 != nil {
		if opts.L1 == nil {
			return MulticoreResult{}, fmt.Errorf("resim: SharedL2 requires an L1 geometry")
		}
		var err error
		shared, err = NewL1Cache(*opts.SharedL2)
		if err != nil {
			return MulticoreResult{}, err
		}
	}
	var specs []multicore.CoreSpec
	for _, name := range opts.Workloads {
		p, err := workload.ByName(name)
		if err != nil {
			return MulticoreResult{}, err
		}
		coreCfg := cfg
		if shared != nil {
			if err := multicore.AttachSharedDL1(&coreCfg, *opts.L1, shared); err != nil {
				return MulticoreResult{}, err
			}
		}
		src, err := p.NewSource(traceConfigFor(coreCfg), opts.Limit)
		if err != nil {
			return MulticoreResult{}, err
		}
		specs = append(specs, multicore.CoreSpec{
			Name: name, Config: coreCfg, Source: src, StartPC: funcsim.CodeBase,
		})
	}
	cl, err := multicore.New(specs)
	if err != nil {
		return MulticoreResult{}, err
	}
	return cl.Run(0)
}

// AggregateMIPS models a lockstep cluster's simulation throughput on dev
// for cores configured as cfg.
func AggregateMIPS(dev Device, cfg Config, res MulticoreResult) float64 {
	return res.AggregateMIPS(dev, cfg.MinorCyclesPerMajor())
}

// traceConfigFor derives the sim-bpred trace-generation configuration that
// matches a simulated-processor configuration, as the paper does.
func traceConfigFor(cfg Config) funcsim.TraceConfig {
	return funcsim.TraceConfig{
		Predictor:    cfg.Predictor,
		PerfectBP:    cfg.PerfectBP,
		WrongPathLen: cfg.WrongPathLen(),
	}
}

// Version identifies this reproduction.
const Version = "1.0.0"
