// Package resim is a Go reproduction of "ReSim, a Trace-Driven,
// Reconfigurable ILP Processor Simulator" (Fytraki & Pnevmatikatos,
// DATE 2009): a cycle-accurate, trace-driven timing simulator for an
// out-of-order, superscalar, speculative processor, together with the
// substrates the paper's evaluation depends on — a SimpleScalar-style
// functional simulator and trace generator, a parameterizable branch
// predictor, timing-only caches, synthetic SPECINT-like workloads, the
// minor-cycle internal pipeline organizations of §IV, and an FPGA
// throughput/area model calibrated against the published results.
//
// The public API is the Session: one validated configuration, built with
// functional options, behind every run mode (workload simulation, trace
// file simulation, trace writing, parallel sweeps, lockstep multicore).
// Runs take a context.Context for cancellation and can report progress
// through an Observer.
//
// Quick start:
//
//	ses, err := resim.New()                          // the paper's 4-wide machine
//	if err != nil { ... }
//	res, err := ses.RunWorkload(ctx, "gzip", 200_000)
//	if err != nil { ... }
//	fmt.Printf("IPC %.2f -> %.1f simulation MIPS on Virtex-5\n",
//		res.IPC(), resim.SimulationMIPS(resim.Virtex5, ses.Config(), res))
//
// Design-space sweeps also run distributed: cmd/resimd serves a
// coordinator/worker sweep service over TCP, (*Session).SweepRemote (or a
// session built WithCoordinator) submits sweeps to it, and points are
// sharded across worker hosts by trace key so every distinct trace is
// generated — or shipped as a delta-compressed container — exactly once
// per host. Local Sweep calls run the same scheduler over an in-process
// loopback worker pool, so local and remote sweeps share semantics,
// result ordering and progress reporting.
//
// The cmd/resim, cmd/tracegen, cmd/resim-bench and cmd/resimd tools and
// the examples/ directory exercise this API; internal packages carry the
// implementation. The pre-Session free functions (SimulateWorkload,
// RunSweep, ...) remain as deprecated wrappers over a Session.
package resim

import (
	"context"
	"io"

	"repro/internal/bpred"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/multicore"
	"repro/internal/sched"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/uarch"
	"repro/internal/workload"
)

// Core configuration and results.
type (
	// Config parameterizes the simulated processor and engine organization.
	Config = core.Config
	// Result is the outcome of a simulation run.
	Result = core.Result
	// PredictorConfig parameterizes the branch predictor block.
	PredictorConfig = bpred.Config
	// CacheConfig describes one timing-only cache.
	CacheConfig = cache.Config
	// CacheModel is the memory-system interface (hit/miss + latency) the
	// engine consumes; assign to Config.ICache / Config.DCache.
	CacheModel = cache.Model
	// FUConfig configures the functional-unit pools.
	FUConfig = uarch.FUConfig
	// Organization selects the internal minor-cycle pipeline (§IV).
	Organization = sched.Organization
	// Workload is a synthetic SPECINT-like benchmark profile.
	Workload = workload.Profile
	// Device is an FPGA device model.
	Device = fpga.Device
	// AreaBreakdown is a per-stage FPGA resource estimate (Table 4).
	AreaBreakdown = fpga.Breakdown
	// Record is one pre-decoded trace record (formats B, M and O).
	Record = trace.Record
	// Source yields trace records to the engine.
	Source = trace.Source
	// PipeTracer observes per-instruction pipeline events (see
	// internal/ptrace for a ready-made collector).
	PipeTracer = core.PipeTracer
	// Observer receives periodic Progress callbacks from long runs.
	Observer = core.Observer
	// ObserverFunc adapts a plain function to the Observer interface.
	ObserverFunc = core.ObserverFunc
	// Progress is one periodic snapshot delivered to an Observer.
	Progress = core.Progress
	// IntervalSnapshot is one window of per-interval engine telemetry —
	// counter, cache and occupancy deltas plus window IPC and miss rates —
	// delivered to a WithTelemetry sink; see WithTelemetry and
	// docs/TELEMETRY.md.
	IntervalSnapshot = core.IntervalSnapshot
	// TraceCache memoizes generated workload traces: every consumer of the
	// same (workload, trace configuration, instruction budget) — sweep
	// points, repeated runs, homogeneous multicore clusters, table
	// regeneration — pays the generation cost once and replays private
	// snapshots. Sessions default to SharedTraceCache(); see WithTraceCache.
	TraceCache = tracecache.Cache
	// TraceCacheConfig bounds a TraceCache: in-memory budget, per-trace
	// instruction cap and an optional on-disk spill directory (evicted
	// traces are written as delta-compressed containers and reloaded on
	// demand).
	TraceCacheConfig = tracecache.Config
	// TraceCacheStats is a point-in-time snapshot of cache activity.
	TraceCacheStats = tracecache.Stats
)

// The three internal pipeline organizations (paper Figures 2-4).
const (
	OrgSimple    = sched.OrgSimple    // 2N+3 minor cycles per major cycle
	OrgImproved  = sched.OrgImproved  // N+4
	OrgOptimized = sched.OrgOptimized // N+3, needs <= N-1 memory ports
)

// The evaluation's FPGA devices.
var (
	Virtex4 = fpga.Virtex4 // xc4vlx40, 84 MHz minor clock
	Virtex5 = fpga.Virtex5 // xc5vlx50t, 105 MHz minor clock
)

// OrganizationByName parses an organization name ("simple", "improved",
// "optimized") — the parser the CLI flags and the JSON configuration file
// share.
func OrganizationByName(name string) (Organization, error) { return sched.OrgByName(name) }

// DefaultConfig returns the paper's evaluated 4-way configuration: RB 16,
// LSQ 8, 4 ALU + 1 MUL + 1 DIV, two-level branch predictor, perfect memory,
// Optimized (N+3) organization. New() starts from this configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// FASTComparisonConfig returns the 2-issue configuration of Table 1's right
// portion: perfect branch prediction and 32 KB 8-way L1 caches.
func FASTComparisonConfig() Config { return core.FASTComparisonConfig() }

// NewL1Cache attaches a timing-only set-associative cache built from cfg to
// a Config (assign to Config.ICache / Config.DCache).
func NewL1Cache(cfg CacheConfig) (CacheModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.New(cfg), nil
}

// NewTraceCache builds a private trace cache bounded by cfg. Pass it to
// sessions via WithTraceCache when the process-wide default (shared memory
// budget, no spill) is not what you want.
func NewTraceCache(cfg TraceCacheConfig) *TraceCache { return tracecache.New(cfg) }

// SharedTraceCache returns the process-wide trace cache every Session (and
// the deprecated free functions) uses by default, so mixed old- and
// new-style callers in one process share one set of generated traces.
func SharedTraceCache() *TraceCache { return tracecache.Shared() }

// Workloads returns the five SPECINT CPU2000 stand-in profiles in Table 1
// row order (gzip, bzip2, parser, vortex, vpr).
func Workloads() []Workload { return workload.Profiles() }

// WorkloadByName returns the named profile.
func WorkloadByName(name string) (Workload, error) { return workload.ByName(name) }

// TraceStats summarizes a generated trace file.
type TraceStats struct {
	Records      uint64
	WrongPath    uint64
	Bits         uint64
	BitsPerInstr float64
}

// traceSink abstracts the two container writers.
type traceSink interface {
	Write(trace.Record) error
	Close() error
	Records() uint64
	BitsWritten() uint64
	BitsPerRecord() float64
}

// sessionFor wraps an already-composed configuration for the deprecated
// free functions, validating it the way New does.
func sessionFor(cfg Config) (*Session, error) { return New(WithConfig(cfg)) }

// SimulateWorkload generates the named workload's trace on the fly and
// simulates up to limit correct-path instructions through the engine.
//
// Deprecated: use New and (*Session).RunWorkload, which add cancellation
// and progress observation.
func SimulateWorkload(cfg Config, name string, limit uint64) (Result, error) {
	s, err := sessionFor(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunWorkload(context.Background(), name, limit)
}

// Simulate runs the engine over an arbitrary record source starting at
// startPC.
//
// Deprecated: use New and (*Session).RunSource.
func Simulate(cfg Config, src Source, startPC uint32) (Result, error) {
	s, err := sessionFor(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunSource(context.Background(), src, startPC)
}

// WriteWorkloadTrace generates a ReSim trace for the named workload into w
// (container format: header + bit-packed B/M/O records). The predictor
// configuration of cfg drives wrong-path block generation, mirroring
// sim-bpred.
//
// Deprecated: use New and (*Session).WriteTrace.
func WriteWorkloadTrace(w io.Writer, cfg Config, name string, limit uint64) (TraceStats, error) {
	// Historical behavior: only the trace-generation fields of cfg are
	// consumed; engine-side fields are not validated. Routed through the
	// shared trace cache so mixed old/new callers never double-generate.
	return writeTrace(context.Background(), w, tracecache.Shared(), cfg.TraceConfig(), name, limit, false)
}

// WriteCompressedWorkloadTrace is WriteWorkloadTrace with the delta-coded
// container (see internal/trace): typically ~1.4x smaller, bringing the
// paper's trace-bandwidth demand under gigabit Ethernet.
//
// Deprecated: use New and (*Session).WriteTrace with compress = true.
func WriteCompressedWorkloadTrace(w io.Writer, cfg Config, name string, limit uint64) (TraceStats, error) {
	return writeTrace(context.Background(), w, tracecache.Shared(), cfg.TraceConfig(), name, limit, true)
}

// SimulateTraceFile opens a trace container previously produced by
// WriteWorkloadTrace, WriteCompressedWorkloadTrace or cmd/tracegen — the
// format is auto-detected — and simulates it.
//
// Deprecated: use New and (*Session).RunTrace.
func SimulateTraceFile(cfg Config, path string) (Result, error) {
	s, err := sessionFor(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunTrace(context.Background(), path)
}

// SimulationMIPS converts a result's IPC into modeled wall-clock simulation
// throughput on dev: MinorClockMHz / K(width) x IPC (Table 1's model).
func SimulationMIPS(dev Device, cfg Config, res Result) float64 {
	return fpga.SimulationMIPS(dev, cfg.MinorCyclesPerMajor(), res.IPC())
}

// EstimateArea produces the Table 4 per-stage FPGA resource estimate.
func EstimateArea(cfg Config) (AreaBreakdown, error) { return fpga.EstimateArea(cfg) }

// RenderPipeline renders the minor-cycle schedule of the given organization
// for an n-wide processor (the ASCII equivalent of Figures 2-4).
func RenderPipeline(org Organization, n int) (string, error) {
	s, err := sched.Build(org, n)
	if err != nil {
		return "", err
	}
	if err := s.Validate(); err != nil {
		return "", err
	}
	return s.Render(), nil
}

// SweepPoint is one named design point of a bulk sweep.
type SweepPoint = sweep.Point

// SweepResult pairs a design point with its simulation outcome.
type SweepResult = sweep.Result

// SweepGrid derives one design point per value from base; names are
// "prefix=value".
func SweepGrid(prefix string, base Config, values []int, apply func(*Config, int)) []SweepPoint {
	return sweep.Grid(prefix, base, values, apply)
}

// RunSweep simulates every design point over the named workload in parallel
// across host cores; results come back in point order, deterministic
// regardless of parallelism.
//
// Deprecated: use New and (*Session).Sweep, which add cancellation and
// per-point progress observation.
func RunSweep(workloadName string, instructions uint64, points []SweepPoint) ([]SweepResult, error) {
	s, err := New()
	if err != nil {
		return nil, err
	}
	return s.Sweep(context.Background(), workloadName, instructions, points)
}

// MulticoreResult is the outcome of a lockstep multi-instance simulation.
type MulticoreResult = multicore.Result

// MulticoreOptions configures (*Session).Multicore.
type MulticoreOptions struct {
	// Workloads names one profile per simulated core.
	Workloads []string
	// Limit bounds correct-path instructions per core (0 = run to HALT).
	Limit uint64
	// SharedL2, when non-nil, backs every core's private L1 data cache
	// with one shared L2, modeling inter-core cache interference. L1 must
	// then be set too.
	SharedL2 *CacheConfig
	// L1 is the private data-cache geometry used with SharedL2.
	L1 *CacheConfig
}

// SimulateMulticore runs one ReSim instance per workload in lockstep major
// cycles (§VI). Every core uses cfg (width, predictor, organization).
// Unlike the historical implementation, cfg.MaxCycles now bounds the
// lockstep run (previously it was silently ignored here).
//
// Deprecated: use New and (*Session).Multicore.
func SimulateMulticore(cfg Config, opts MulticoreOptions) (MulticoreResult, error) {
	s, err := sessionFor(cfg)
	if err != nil {
		return MulticoreResult{}, err
	}
	return s.Multicore(context.Background(), opts)
}

// AggregateMIPS models a lockstep cluster's simulation throughput on dev
// for cores configured as cfg.
func AggregateMIPS(dev Device, cfg Config, res MulticoreResult) float64 {
	return res.AggregateMIPS(dev, cfg.MinorCyclesPerMajor())
}

// Version identifies this reproduction.
const Version = "1.2.0"
