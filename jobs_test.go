package resim_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	resim "repro"
	"repro/internal/jobd"
	"repro/internal/sweepd"
)

// startJobService brings up a job platform over a loopback worker pool with
// its HTTP front door on an httptest server — the public-API analog of the
// internal jobd tests' clusters.
func startJobService(t *testing.T, tenants []jobd.Tenant) string {
	t.Helper()
	p, err := jobd.New(jobd.Options{
		Pool: jobd.StaticPool{
			sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{}),
			sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{}),
		},
		Tenants: tenants,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	t.Cleanup(func() {
		srv.Close()
		p.Close()
	})
	return srv.URL
}

// TestSubmitRemoteMatchesSweep: a sweep routed through the job service —
// SubmitRemote, then JobHandle.Results — returns results byte-identical to
// Session.Sweep on the same points, the same contract SweepRemote honors.
func TestSubmitRemoteMatchesSweep(t *testing.T) {
	const instrs = 8000
	ctx := context.Background()
	server := startJobService(t, []jobd.Tenant{{Name: "alice", Token: "tok-a"}})

	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(resim.DefaultConfig())
	want, err := ses.Sweep(ctx, "gzip", instrs, pts)
	if err != nil {
		t.Fatal(err)
	}

	h, err := ses.SubmitRemote(ctx, server, "gzip", instrs, pts,
		&resim.SubmitOptions{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() == "" {
		t.Fatal("SubmitRemote returned a handle with no job ID")
	}
	st, err := h.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != h.ID() || st.Total != len(pts) {
		t.Fatalf("status: id=%s total=%d, want id=%s total=%d", st.ID, st.Total, h.ID(), len(pts))
	}
	got, err := h.Results(ctx)
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("job-service results are not byte-identical to Sweep results\nremote: %.400s\nlocal:  %.400s",
			gotJSON, wantJSON)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("job-service results differ structurally from Sweep results")
	}
}

// TestSubmitRemoteAuthAndCancel: a bad token is rejected at submission, and
// a canceled job's Results reports the cancellation instead of blocking.
func TestSubmitRemoteAuthAndCancel(t *testing.T) {
	ctx := context.Background()
	server := startJobService(t, []jobd.Tenant{{Name: "alice", Token: "tok-a"}})

	ses, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(resim.DefaultConfig())
	if _, err := ses.SubmitRemote(ctx, server, "gzip", 1000, pts,
		&resim.SubmitOptions{Token: "wrong"}); err == nil {
		t.Fatal("SubmitRemote with a bad token succeeded")
	}

	// A large job we cancel immediately: Results must come back with the
	// canceled state as an error, not hang or fabricate results.
	h, err := ses.SubmitRemote(ctx, server, "gzip", 50_000_000, pts,
		&resim.SubmitOptions{Token: "tok-a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Results(ctx); err == nil {
		t.Fatal("Results of a canceled job reported success")
	}
	st, err := h.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobd.StateCanceled {
		t.Fatalf("state after cancel = %s, want %s", st.State, jobd.StateCanceled)
	}
}
