package resim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/jobd"
	"repro/internal/sweepd"
)

// SubmitOptions configures a SubmitRemote submission.
type SubmitOptions struct {
	// Token is the tenant's bearer token for the job service (empty for a
	// service running with authentication disabled).
	Token string
	// Priority orders dispatch: higher-priority jobs' groups always
	// dispatch first. Default 0.
	Priority int
}

// JobStatus is a submitted job's externally visible state.
type JobStatus = jobd.JobStatus

// JobState is a submitted job's lifecycle state ("queued", "running",
// "done", "failed", "canceled"); see JobStatus.State and
// JobHandle.Telemetry.
type JobState = jobd.State

// JobHandle tracks one job submitted to a job service. Unlike SweepRemote,
// the submission is durable server-side the moment SubmitRemote returns:
// the handle's owner can exit and a later process (or `resim jobs`) can
// pick the results up by ID, and a crashed coordinator recovers the job
// from its journal.
type JobHandle struct {
	client *jobd.Client
	id     string
	job    *sweepd.Job
}

// SubmitRemote submits a sweep to the job service at server (base URL,
// e.g. "http://coordinator:8080") and returns immediately with a handle.
// The design points must be expressible on the wire — the same
// serializability contract as SweepRemote, validated before submitting.
//
// Where Sweep and SweepRemote block for results, SubmitRemote queues: the
// service admits the job (or refuses with queue-full/tenant-busy, a
// retryable error), schedules it fairly against other tenants' work, and
// streams results to Results whenever the caller asks.
func (s *Session) SubmitRemote(ctx context.Context, server, workloadName string, instructions uint64, points []SweepPoint, opts *SubmitOptions) (*JobHandle, error) {
	job, err := s.sweepJob(workloadName, instructions, points)
	if err != nil {
		return nil, err
	}
	wj, err := sweepd.WireJobOf(job)
	if err != nil {
		return nil, err
	}
	var o SubmitOptions
	if opts != nil {
		o = *opts
	}
	c := &jobd.Client{Server: server, Token: o.Token}
	st, err := c.Submit(ctx, jobd.SubmitRequest{
		Workload:     workloadName,
		Instructions: instructions,
		Priority:     o.Priority,
		Points:       wj.Points,
	})
	if err != nil {
		return nil, err
	}
	return &JobHandle{client: c, id: st.ID, job: job}, nil
}

// ID returns the service-assigned job ID.
func (h *JobHandle) ID() string { return h.id }

// Status fetches the job's current state and per-point progress.
func (h *JobHandle) Status(ctx context.Context) (JobStatus, error) {
	return h.client.Status(ctx, h.id)
}

// Cancel cancels the job. Already-completed points' results remain
// readable; canceling a finished job is a no-op.
func (h *JobHandle) Cancel(ctx context.Context) error {
	_, err := h.client.Cancel(ctx, h.id)
	return err
}

// Telemetry follows the job's live interval-snapshot stream, calling sink
// for every snapshot until the job reaches a terminal state (which it
// returns). Snapshots carry the job-wide point index in Core and arrive in
// per-point emission order; a handle attaching mid-run first replays the
// service's buffered ring, then follows live. The service never lets a slow
// sink stall the simulation — snapshots the server-side ring wraps past
// while sink is busy are simply absent (Seq gaps within a point reveal the
// loss). See docs/TELEMETRY.md for the wire format and drop semantics.
func (h *JobHandle) Telemetry(ctx context.Context, sink func(IntervalSnapshot) error) (JobState, error) {
	return h.client.Telemetry(ctx, h.id, sink)
}

// TraceSpan is one recorded lifecycle event of a submitted job: when it
// was queued, dispatched (to which worker, in which trace-key group),
// requeued after a worker died, resumed past a checkpointed cycle, and
// completed. See JobHandle.Trace and docs/OBSERVABILITY.md.
type TraceSpan = jobd.TraceSpan

// Trace follows the job's lifecycle span stream, calling sink for every
// recorded span until the job reaches a terminal state (which it returns).
// A handle attaching mid-run first replays the service's buffered span
// log, then follows live. Traces are ephemeral and bounded server-side:
// spans evicted before this handle attached are absent, and Seq gaps
// reveal the loss. See docs/OBSERVABILITY.md for the span schema.
func (h *JobHandle) Trace(ctx context.Context, sink func(TraceSpan) error) (JobState, error) {
	return h.client.Trace(ctx, h.id, sink)
}

// Results blocks until the job finishes and returns its results in point
// order — the same contract as Sweep, so a sweep routed through the job
// service is byte-for-byte comparable to a local one. A canceled or failed
// job returns an error.
func (h *JobHandle) Results(ctx context.Context) ([]SweepResult, error) {
	wrs := make([]*sweepd.WireResult, len(h.job.Points))
	state, err := h.client.Results(ctx, h.id, func(wr *sweepd.WireResult) error {
		if wr.Index < 0 || wr.Index >= len(wrs) {
			return fmt.Errorf("resim: job %s streamed result for unknown point %d", h.id, wr.Index)
		}
		wrs[wr.Index] = wr
		return nil
	})
	if err != nil {
		return nil, err
	}
	if state != jobd.StateDone {
		return nil, fmt.Errorf("resim: job %s ended %s", h.id, state)
	}
	results := make([]SweepResult, len(h.job.Points))
	for i, wr := range wrs {
		if wr == nil {
			return nil, fmt.Errorf("resim: job %s finished without a result for point %d", h.id, i)
		}
		results[i] = SweepResult{Point: h.job.Points[i]}
		if wr.Err != "" {
			results[i].Err = errors.New(wr.Err)
		} else if wr.Res != nil {
			results[i].Res = wr.Res.Result(h.job.Points[i].Config)
		}
	}
	return results, nil
}
