package resim

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// Checkpoint is a complete serialized engine state: pipeline and fetch
// state, queue contents, branch-predictor tables, cache arrays, statistics
// accumulators and the trace-reader position, in a versioned,
// self-describing encoding. Engines are deterministic, so a run restored
// from a checkpoint over the same input finishes with byte-identical
// statistics to an uninterrupted run. Capture checkpoints with
// WithCheckpointEvery and resume with ResumeFrom; cmd/resim exposes the
// same pair as -checkpoint and -resume.
type Checkpoint = core.Checkpoint

// SaveCheckpoint writes cp to path atomically (temp file + rename), so a
// reader — including a resume after this process is killed mid-write —
// always sees a complete checkpoint, never a torn one.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("resim: save checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := cp.EncodeTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("resim: save checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resim: save checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resim: save checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint (or any
// Checkpoint.EncodeTo output), validating the encoding version.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("resim: load checkpoint: %w", err)
	}
	defer f.Close()
	return core.ReadCheckpoint(f)
}
