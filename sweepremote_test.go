package resim_test

import (
	"context"
	"encoding/json"
	"reflect"
	"sync"
	"testing"
	"time"

	resim "repro"
	"repro/internal/sweepd"
	"repro/internal/tracecache"
)

// startCluster brings up a coordinator and n resimd-style workers (each
// with its own trace cache, standing in for distinct hosts) on localhost.
func startCluster(t *testing.T, n int) (string, []*tracecache.Cache) {
	t.Helper()
	coord := sweepd.NewCoordinator()
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	wctx, stop := context.WithCancel(context.Background())
	t.Cleanup(stop)
	caches := make([]*tracecache.Cache, n)
	for i := range caches {
		caches[i] = tracecache.New(tracecache.Config{})
		go sweepd.Work(wctx, addr, sweepd.WorkerOptions{Traces: caches[i]}) //nolint:errcheck
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers registered", coord.WorkerCount(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return addr, caches
}

// acceptancePoints is a 4-point sweep with exactly 2 distinct trace keys:
// RB size feeds the wrong-path block length (and so the key), LSQ size is
// engine-only.
func acceptancePoints(base resim.Config) []resim.SweepPoint {
	var pts []resim.SweepPoint
	for _, rb := range []int{8, 16} {
		for _, lsq := range []int{4, 8} {
			cfg := base
			cfg.RBSize = rb
			cfg.LSQSize = lsq
			pts = append(pts, resim.SweepPoint{Name: "pt", Config: cfg})
		}
	}
	return pts
}

// TestSweepRemoteMatchesSweep is the PR's acceptance criterion: a 4-point
// sweep with 2 distinct trace keys served through SweepRemote against a
// 2-worker loopback cluster performs exactly 2 trace generations total
// (asserted via tracecache.Stats) and returns results byte-identical to
// Session.Sweep on the same points.
func TestSweepRemoteMatchesSweep(t *testing.T) {
	const instrs = 8000
	ctx := context.Background()
	addr, caches := startCluster(t, 2)

	local, err := resim.New(resim.WithTraceCache(resim.NewTraceCache(resim.TraceCacheConfig{})))
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(resim.DefaultConfig())
	want, err := local.Sweep(ctx, "gzip", instrs, pts)
	if err != nil {
		t.Fatal(err)
	}

	remote, err := resim.New()
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.SweepRemote(ctx, addr, "gzip", instrs, pts)
	if err != nil {
		t.Fatal(err)
	}

	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("SweepRemote results are not byte-identical to Sweep results\nremote: %.400s\nlocal:  %.400s",
			gotJSON, wantJSON)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("SweepRemote results differ structurally from Sweep results")
	}

	var gens uint64
	for _, c := range caches {
		gens += c.Stats().Generations
	}
	if gens != 2 {
		t.Fatalf("cluster performed %d trace generations for 2 distinct trace keys, want exactly 2", gens)
	}
}

// TestWithCoordinatorRoutesSweep: a session built WithCoordinator runs its
// plain Sweep calls through the remote service transparently.
func TestWithCoordinatorRoutesSweep(t *testing.T) {
	const instrs = 6000
	ctx := context.Background()
	addr, caches := startCluster(t, 1)

	ses, err := resim.New(resim.WithCoordinator(addr))
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(ses.Config())
	res, err := ses.Sweep(ctx, "gzip", instrs, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pts) {
		t.Fatalf("got %d results, want %d", len(res), len(pts))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("point %d: %v", i, r.Err)
		}
	}
	// Proof the job really ran on the remote worker: its cache did the
	// generations, two distinct keys' worth.
	if gens := caches[0].Stats().Generations; gens != 2 {
		t.Fatalf("remote worker performed %d generations, want 2", gens)
	}
}

// TestSweepObserverDoneTotal: the local Sweep path reports sweep completion
// through the extended Progress fields — done counts 1..N against a fixed
// total, with exactly one Final.
func TestSweepObserverDoneTotal(t *testing.T) {
	var (
		mu     sync.Mutex
		dones  []int
		totals []int
		finals int
	)
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, p.Done)
		totals = append(totals, p.Total)
		if p.Final {
			finals++
		}
	}), 0))
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(ses.Config())
	if _, err := ses.Sweep(context.Background(), "gzip", 5000, pts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(dones, []int{1, 2, 3, 4}) {
		t.Errorf("done sequence = %v, want [1 2 3 4]", dones)
	}
	for _, tot := range totals {
		if tot != len(pts) {
			t.Errorf("total = %d, want %d", tot, len(pts))
		}
	}
	if finals != 1 {
		t.Errorf("final callbacks = %d, want exactly 1", finals)
	}
}

// TestSweepRemoteForwardsObserver: SweepRemote feeds the session observer
// the coordinator-side progress stream.
func TestSweepRemoteForwardsObserver(t *testing.T) {
	addr, _ := startCluster(t, 2)
	var (
		mu     sync.Mutex
		calls  int
		finals int
		lastD  int
	)
	ses, err := resim.New(resim.WithObserver(resim.ObserverFunc(func(p resim.Progress) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.Done <= lastD {
			// Done strictly increases: one callback per newly completed point.
			// (Guarded here rather than asserting the exact sequence so the
			// failure mode is readable.)
			finals = -1000
		}
		lastD = p.Done
		if p.Final {
			finals++
		}
	}), 0))
	if err != nil {
		t.Fatal(err)
	}
	pts := acceptancePoints(ses.Config())
	if _, err := ses.SweepRemote(context.Background(), addr, "gzip", 5000, pts); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != len(pts) {
		t.Errorf("observer calls = %d, want one per point (%d)", calls, len(pts))
	}
	if finals != 1 {
		t.Errorf("final callbacks = %d, want exactly 1 (and monotonic Done)", finals)
	}
}
