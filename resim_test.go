package resim_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	resim "repro"
)

func TestSimulateWorkloadQuickstart(t *testing.T) {
	cfg := resim.DefaultConfig()
	res, err := resim.SimulateWorkload(cfg, "gzip", 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatalf("empty result: %+v", res.Counters)
	}
	if ipc := res.IPC(); ipc < 0.5 || ipc > 4 {
		t.Errorf("IPC = %.2f out of plausible range", ipc)
	}
	mips := resim.SimulationMIPS(resim.Virtex5, cfg, res)
	if mips <= 0 {
		t.Errorf("modeled MIPS = %v", mips)
	}
	// Virtex-5 runs 105/84 faster than Virtex-4.
	v4 := resim.SimulationMIPS(resim.Virtex4, cfg, res)
	if ratio := mips / v4; ratio < 1.24 || ratio > 1.26 {
		t.Errorf("V5/V4 ratio = %.3f, want 1.25", ratio)
	}
}

func TestUnknownWorkloadRejected(t *testing.T) {
	if _, err := resim.SimulateWorkload(resim.DefaultConfig(), "mcf", 1000); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := resim.WorkloadByName("nope"); err == nil {
		t.Error("WorkloadByName accepted unknown name")
	}
}

func TestWorkloadsRoster(t *testing.T) {
	ws := resim.Workloads()
	if len(ws) != 5 {
		t.Fatalf("workloads = %d, want 5", len(ws))
	}
	if ws[0].Name != "gzip" || ws[4].Name != "vpr" {
		t.Errorf("unexpected order: %s..%s", ws[0].Name, ws[4].Name)
	}
}

func TestTraceFileRoundTripThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "vpr.trace")
	cfg := resim.DefaultConfig()

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := resim.WriteWorkloadTrace(f, cfg, "vpr", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records < 20_000 {
		t.Fatalf("trace stats: %+v", st)
	}
	if st.BitsPerInstr < 24 || st.BitsPerInstr > 89 {
		t.Errorf("bits/instr = %.2f", st.BitsPerInstr)
	}

	// Off-line simulation of the file must equal on-the-fly simulation.
	offline, err := resim.SimulateTraceFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	online, err := resim.SimulateWorkload(cfg, "vpr", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Cycles != online.Cycles || offline.Committed != online.Committed {
		t.Errorf("offline %d/%d differs from online %d/%d (cycles/committed)",
			offline.Cycles, offline.Committed, online.Cycles, online.Committed)
	}
}

func TestCompressedTraceFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := resim.DefaultConfig()
	rawPath := filepath.Join(dir, "raw.trace")
	compPath := filepath.Join(dir, "comp.trace")

	fr, err := os.Create(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	rawStats, err := resim.WriteWorkloadTrace(fr, cfg, "gzip", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = fr.Close()
	fc, err := os.Create(compPath)
	if err != nil {
		t.Fatal(err)
	}
	compStats, err := resim.WriteCompressedWorkloadTrace(fc, cfg, "gzip", 15_000)
	if err != nil {
		t.Fatal(err)
	}
	_ = fc.Close()

	if compStats.Records != rawStats.Records {
		t.Errorf("record counts differ: %d vs %d", compStats.Records, rawStats.Records)
	}
	if compStats.Bits >= rawStats.Bits {
		t.Errorf("compression did not shrink the trace: %d >= %d bits", compStats.Bits, rawStats.Bits)
	}
	// Both containers simulate identically (format auto-detected).
	a, err := resim.SimulateTraceFile(cfg, rawPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := resim.SimulateTraceFile(cfg, compPath)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Error("raw and compressed containers produced different results")
	}
}

func TestCustomCacheConfig(t *testing.T) {
	cfg := resim.DefaultConfig()
	dl1, err := resim.NewL1Cache(resim.CacheConfig{
		Name: "dl1", SizeBytes: 8 << 10, Assoc: 2, BlockBytes: 32,
		HitLatency: 1, MissLatency: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.DCache = dl1
	res, err := resim.SimulateWorkload(cfg, "parser", 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.DCache.Accesses() == 0 {
		t.Error("custom D-cache saw no accesses")
	}
	if _, err := resim.NewL1Cache(resim.CacheConfig{Name: "bad", SizeBytes: 100}); err == nil {
		t.Error("invalid cache config accepted")
	}
}

func TestEstimateAreaPublicAPI(t *testing.T) {
	b, err := resim.EstimateArea(resim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if b.Total().Slices == 0 {
		t.Error("empty area estimate")
	}
}

func TestRenderPipelinePublicAPI(t *testing.T) {
	for _, org := range []resim.Organization{resim.OrgSimple, resim.OrgImproved, resim.OrgOptimized} {
		out, err := resim.RenderPipeline(org, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "minor") {
			t.Errorf("render for %v missing grid", org)
		}
	}
	if _, err := resim.RenderPipeline(resim.OrgSimple, -1); err == nil {
		t.Error("negative width accepted")
	}
}

func TestSimulateMulticoreFacade(t *testing.T) {
	cfg := resim.DefaultConfig()
	res, err := resim.SimulateMulticore(cfg, resim.MulticoreOptions{
		Workloads: []string{"gzip", "vpr"},
		Limit:     10_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("cores = %d", len(res.PerCore))
	}
	if res.AggregateIPC() <= res.PerCore[0].IPC() {
		t.Error("aggregate IPC should exceed a single core's")
	}
	if mips := resim.AggregateMIPS(resim.Virtex5, cfg, res); mips <= 0 {
		t.Errorf("aggregate MIPS = %v", mips)
	}
	// Shared-L2 variant runs and interferes.
	shared, err := resim.SimulateMulticore(cfg, resim.MulticoreOptions{
		Workloads: []string{"gzip", "bzip2"},
		Limit:     10_000,
		L1: &resim.CacheConfig{Name: "dl1", SizeBytes: 4 << 10, Assoc: 2,
			BlockBytes: 64, HitLatency: 1, MissLatency: 20},
		SharedL2: &resim.CacheConfig{Name: "l2", SizeBytes: 32 << 10, Assoc: 8,
			BlockBytes: 64, HitLatency: 6, MissLatency: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if shared.PerCore[0].DCache.Accesses() == 0 {
		t.Error("shared-L2 cluster saw no D-cache traffic")
	}
	// Error paths.
	if _, err := resim.SimulateMulticore(cfg, resim.MulticoreOptions{}); err == nil {
		t.Error("empty workload list accepted")
	}
	if _, err := resim.SimulateMulticore(cfg, resim.MulticoreOptions{
		Workloads: []string{"gzip"},
		SharedL2:  &resim.CacheConfig{Name: "l2", SizeBytes: 32 << 10, Assoc: 8, BlockBytes: 64, HitLatency: 6, MissLatency: 40},
	}); err == nil {
		t.Error("SharedL2 without L1 accepted")
	}
}

func TestResultReport(t *testing.T) {
	res, err := resim.SimulateWorkload(resim.DefaultConfig(), "bzip2", 10_000)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Registry().String()
	for _, want := range []string{"sim_num_insn", "sim_IPC", "bpred_lookups"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
