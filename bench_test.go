// Benchmarks regenerating every table and figure of the paper's evaluation
// (run `go test -bench=. -benchmem`). Each BenchmarkTableN/BenchmarkFigureN
// corresponds to one artifact; reported custom metrics carry the reproduced
// quantities (IPC, modeled FPGA MIPS, bits/instruction, slices, K), while
// ns/op measures this reproduction's own speed on the host.
// cmd/resim-bench renders the same artifacts as formatted tables.
package resim_test

import (
	"context"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	resim "repro"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/fpga"
	"repro/internal/funcsim"
	"repro/internal/jobd"
	"repro/internal/sched"
	"repro/internal/sweepd"
	"repro/internal/tables"
	"repro/internal/trace"
	"repro/internal/tracecache"
	"repro/internal/workload"
)

// benchInstrs is the per-iteration simulated instruction budget.
const benchInstrs = 50_000

// BenchmarkTable1PerfectMemory regenerates Table 1's left portion: 4-issue,
// two-level branch predictor, perfect memory, K = N+3 = 7.
func BenchmarkTable1PerfectMemory(b *testing.B) {
	for _, w := range resim.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			cfg := resim.DefaultConfig()
			var res resim.Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = resim.SimulateWorkload(cfg, w.Name, benchInstrs)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, cfg, res)
		})
	}
}

// BenchmarkTable1CacheConfig regenerates Table 1's right portion: 2-issue,
// perfect branch prediction, 32K 8-way L1 caches, K = N+4 = 6.
func BenchmarkTable1CacheConfig(b *testing.B) {
	for _, w := range resim.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			var res resim.Result
			var err error
			cfg := resim.FASTComparisonConfig()
			for i := 0; i < b.N; i++ {
				cfg = resim.FASTComparisonConfig() // fresh cache state per run
				res, err = resim.SimulateWorkload(cfg, w.Name, benchInstrs)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportSim(b, cfg, res)
			b.ReportMetric(res.DCache.MissRate(), "dl1_missrate")
		})
	}
}

func reportSim(b *testing.B, cfg resim.Config, res resim.Result) {
	b.Helper()
	b.ReportMetric(res.IPC(), "IPC")
	b.ReportMetric(resim.SimulationMIPS(resim.Virtex4, cfg, res), "V4_MIPS")
	b.ReportMetric(resim.SimulationMIPS(resim.Virtex5, cfg, res), "V5_MIPS")
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(res.Committed)*float64(b.N)/sec/1e6, "host_MIPS")
	}
}

// BenchmarkTable2Simulators regenerates the simulator comparison. The
// per-iteration work measures this repository's own software engine in
// execution-driven (sim-outorder-style) mode; the modeled ReSim speeds are
// reported as metrics alongside the paper's reported comparison points.
func BenchmarkTable2Simulators(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	var res core.Result
	var hs baseline.HostStats
	for i := 0; i < b.N; i++ {
		res, hs, err = baseline.ExecutionDriven(context.Background(), cfg, prog, benchInstrs)
		if err != nil {
			b.Fatal(err)
		}
		prog, _ = p.Build() // fresh machine state per run
	}
	b.ReportMetric(hs.HostMIPS, "go_engine_MIPS")
	b.ReportMetric(fpga.SimulationMIPS(fpga.Virtex5, cfg.MinorCyclesPerMajor(), res.IPC()), "ReSim_V5_MIPS")
	b.ReportMetric(0.30, "sim_outorder_reported_MIPS")
	b.ReportMetric(2.79, "FAST_reported_MIPS")
	b.ReportMetric(4.70, "APorts_reported_MIPS")
}

// BenchmarkTable3TraceThroughput regenerates the trace-demand statistics:
// average record bits per instruction and the implied trace bandwidth at
// the Virtex-4 simulation rate.
func BenchmarkTable3TraceThroughput(b *testing.B) {
	for _, w := range resim.Workloads() {
		b.Run(w.Name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}
			p, err := workload.ByName(w.Name)
			if err != nil {
				b.Fatal(err)
			}
			var bits, n uint64
			for i := 0; i < b.N; i++ {
				bits, n = 0, 0
				src, err := p.NewSource(tc, benchInstrs)
				if err != nil {
					b.Fatal(err)
				}
				for {
					r, err := src.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					bits += uint64(r.BitLen())
					n++
				}
			}
			bpi := float64(bits) / float64(n)
			b.ReportMetric(bpi, "bits_per_instr")
			// Table 3 pairs bits/instr with the V4 throughput including
			// wrong-path instructions; reuse the Table 1 IPC model.
			res, err := resim.SimulateWorkload(resim.DefaultConfig(), w.Name, benchInstrs)
			if err != nil {
				b.Fatal(err)
			}
			thr := fpga.SimulationMIPS(fpga.Virtex4, resim.DefaultConfig().MinorCyclesPerMajor(), res.TotalIPC())
			b.ReportMetric(thr, "thruput_MIPS")
			b.ReportMetric(fpga.TraceBandwidthMBps(thr, bpi), "trace_MBps")
		})
	}
}

// BenchmarkTable4Area regenerates the per-stage area estimate for the
// reference configuration (4-wide with 32K L1 caches on xc4vlx40).
func BenchmarkTable4Area(b *testing.B) {
	var bd fpga.Breakdown
	var err error
	for i := 0; i < b.N; i++ {
		bd, err = tables.Table4()
		if err != nil {
			b.Fatal(err)
		}
	}
	t := bd.Total()
	b.ReportMetric(float64(t.Slices), "slices")
	b.ReportMetric(float64(t.LUTs), "LUTs")
	b.ReportMetric(float64(t.BRAMs), "BRAMs")
	b.ReportMetric(29230/float64(t.Slices), "FAST_slice_ratio")
}

// benchFigure builds and validates one internal pipeline organization and
// reports its major-cycle latency K.
func benchFigure(b *testing.B, org sched.Organization) {
	b.Helper()
	var s sched.Schedule
	var err error
	for i := 0; i < b.N; i++ {
		s, err = sched.Build(org, 4)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(s.MinorCycles()), "K_minor_cycles")
}

// BenchmarkFigure2SimplePipeline: simple serial execution, 2N+3.
func BenchmarkFigure2SimplePipeline(b *testing.B) { benchFigure(b, sched.OrgSimple) }

// BenchmarkFigure3ImprovedPipeline: improved serial execution, N+4.
func BenchmarkFigure3ImprovedPipeline(b *testing.B) { benchFigure(b, sched.OrgImproved) }

// BenchmarkFigure4OptimizedPipeline: optimized organization, N+3; also
// verifies cycle-for-cycle timing equivalence against the improved
// organization on a live workload (the §IV.B claim).
func BenchmarkFigure4OptimizedPipeline(b *testing.B) {
	benchFigure(b, sched.OrgOptimized)
	impr := resim.DefaultConfig()
	impr.Organization = resim.OrgImproved
	opt := resim.DefaultConfig()
	a, err := resim.SimulateWorkload(impr, "vpr", 20_000)
	if err != nil {
		b.Fatal(err)
	}
	c, err := resim.SimulateWorkload(opt, "vpr", 20_000)
	if err != nil {
		b.Fatal(err)
	}
	if a.Cycles != c.Cycles {
		b.Fatalf("organizations disagree: improved %d vs optimized %d cycles", a.Cycles, c.Cycles)
	}
}

// BenchmarkAblationParallelFetch reproduces the §IV design measurement: a
// 4-wide parallel datapath costs ~4x the area and runs 22% slower, so the
// serial organization wins on throughput per area.
func BenchmarkAblationParallelFetch(b *testing.B) {
	var areaF, freqF float64
	for i := 0; i < b.N; i++ {
		areaF, freqF = fpga.ParallelFetchFactors(4)
	}
	b.ReportMetric(areaF, "area_factor")
	b.ReportMetric(freqF, "freq_factor")
	serial := fpga.Virtex4.MinorClockMHz / float64(sched.OrgOptimized.MinorCyclesPerMajor(4))
	parallel := fpga.ParallelMinorClockMHz(fpga.Virtex4, 4) / 4
	b.ReportMetric(parallel/serial/areaF, "perf_per_area_vs_serial")
}

// BenchmarkEngineTraceDriven measures the raw timing-engine speed over a
// pre-generated in-memory trace (no generation cost), the number that
// corresponds to "how fast is this software ReSim on the host".
func BenchmarkEngineTraceDriven(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}
	src, err := p.NewSource(tc, benchInstrs)
	if err != nil {
		b.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	slice := trace.NewSliceSource(recs)
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		slice.Reset()
		eng, err := core.New(cfg, slice, funcsim.CodeBase)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		committed = res.Committed
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(committed)*float64(b.N)/sec/1e6, "host_MIPS")
	}
}

// benchStreamEngine runs the engine over a synthesized record stream —
// the controlled stimulus for targeting one part of the cycle loop.
func benchStreamEngine(b *testing.B, cfg core.Config, sp workload.StreamProfile) {
	b.Helper()
	recs, err := sp.Records(benchInstrs)
	if err != nil {
		b.Fatal(err)
	}
	slice := trace.NewSliceSource(recs)
	b.ResetTimer()
	var committed uint64
	for i := 0; i < b.N; i++ {
		slice.Reset()
		eng, err := core.New(cfg, slice, 0x1000)
		if err != nil {
			b.Fatal(err)
		}
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		committed = res.Committed
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(committed)*float64(b.N)/sec/1e6, "host_MIPS")
	}
}

// BenchmarkEngineWakeHeavy stresses the wakeup/issue path: long register
// dependency chains (every instruction's operands come from the last few
// producers) keep most of the window waiting on broadcasts, so writeback
// wakeup and ready-queue maintenance dominate. Gated in CI.
func BenchmarkEngineWakeHeavy(b *testing.B) {
	sp := workload.DefaultStreamProfile(0xAE)
	sp.LoadFrac, sp.StoreFrac = 0.05, 0.03
	sp.BranchFrac = 0.02
	sp.MulFrac, sp.DivFrac = 0.10, 0.02
	sp.DepWindow = 2 // tight chains: low ILP, wakeup-bound
	benchStreamEngine(b, core.DefaultConfig(), sp)
}

// BenchmarkEngineMemHeavy stresses the LSQ path: two thirds of the stream
// are loads and stores over a small address range, exercising refresh,
// disambiguation, store-to-load forwarding and the LSQ handles. Gated in
// CI.
func BenchmarkEngineMemHeavy(b *testing.B) {
	sp := workload.DefaultStreamProfile(0x3E3)
	sp.LoadFrac, sp.StoreFrac = 0.45, 0.22
	sp.BranchFrac = 0.05
	sp.MemRange = 1 << 10 // dense aliasing: forwarding and partial overlaps
	benchStreamEngine(b, core.DefaultConfig(), sp)
}

// BenchmarkFunctionalSimulator measures the trace-generation substrate.
func BenchmarkFunctionalSimulator(b *testing.B) {
	p, err := workload.ByName("bzip2")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := p.Build()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var n uint64
	for i := 0; i < b.N; i++ {
		m, err := funcsim.NewMachine(prog, 0)
		if err != nil {
			b.Fatal(err)
		}
		n, err = m.Run(benchInstrs)
		if err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(n)*float64(b.N)/sec/1e6, "host_MIPS")
	}
}

// BenchmarkTraceCodec measures record encode+decode bandwidth.
func BenchmarkTraceCodec(b *testing.B) {
	p, err := workload.ByName("vpr")
	if err != nil {
		b.Fatal(err)
	}
	src, err := p.NewSource(funcsim.TraceConfig{PerfectBP: true}, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		w, err := trace.NewWriter(&sink, trace.Header{StartPC: funcsim.CodeBase})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		bytes = sink.n
	}
	b.SetBytes(bytes)
}

type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkAblationPredictorSweep runs the direction-predictor design-space
// sweep (the exploration workload ReSim is built to accelerate) and reports
// the accuracy spread between the paper's 2-level configuration and perfect
// prediction.
func BenchmarkAblationPredictorSweep(b *testing.B) {
	var rows []tables.PredictorRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = tables.PredictorSweep(context.Background(), tables.Options{Instructions: 20_000}, "gzip")
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Predictor {
		case "2lev (paper)":
			b.ReportMetric(r.MispredRate, "2lev_mispred_rate")
		case "perfect":
			b.ReportMetric(r.IPC, "perfect_IPC")
		}
	}
}

// BenchmarkAblationWrongPathLen runs the wrong-path block sizing sweep and
// reports the trace-volume cost of the paper's conservative RB+IFQ choice.
func BenchmarkAblationWrongPathLen(b *testing.B) {
	var rows []tables.WrongPathRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = tables.WrongPathSweep(context.Background(), tables.Options{Instructions: 20_000}, "parser")
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rows) >= 4 {
		b.ReportMetric(float64(rows[3].TotalBits)/float64(rows[0].TotalBits), "trace_growth_vs_no_wp")
		b.ReportMetric(float64(rows[3].StarvedCycles), "starved_cycles")
	}
}

// BenchmarkExtensionCompressedCodec measures the delta-coded trace writer
// and reports the compression ratio against the raw format.
func BenchmarkExtensionCompressedCodec(b *testing.B) {
	p, err := workload.ByName("vortex")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	src, err := p.NewSource(funcsim.TraceConfig{
		Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen(),
	}, 20_000)
	if err != nil {
		b.Fatal(err)
	}
	var recs []trace.Record
	var rawBits uint64
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		rawBits += uint64(r.BitLen())
		recs = append(recs, r)
	}
	b.ResetTimer()
	var compBits uint64
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		w, err := trace.NewCompressedWriter(&sink, trace.Header{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		compBits = w.BitsWritten()
	}
	b.ReportMetric(float64(rawBits)/float64(compBits), "compression_ratio")
	b.ReportMetric(float64(compBits)/float64(len(recs)), "comp_bits_per_instr")
}

// BenchmarkExtensionMulticore runs the lockstep two-core cluster (paper
// future work) and reports aggregate throughput.
func BenchmarkExtensionMulticore(b *testing.B) {
	cfg := resim.DefaultConfig()
	var res resim.MulticoreResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = resim.SimulateMulticore(cfg, resim.MulticoreOptions{
			Workloads: []string{"gzip", "bzip2"},
			Limit:     20_000,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.AggregateIPC(), "aggregate_IPC")
	b.ReportMetric(resim.AggregateMIPS(resim.Virtex5, cfg, res), "aggregate_V5_MIPS")
}

// BenchmarkInOrderBaseline measures the scalar in-order comparison model.
func BenchmarkInOrderBaseline(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}
	src, err := p.NewSource(tc, benchInstrs)
	if err != nil {
		b.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	slice := trace.NewSliceSource(recs)
	b.ResetTimer()
	var res baseline.InOrderResult
	for i := 0; i < b.N; i++ {
		slice.Reset()
		res, err = baseline.InOrder(baseline.DefaultInOrderConfig(), slice, funcsim.CodeBase)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.IPC(), "IPC")
}

// --- sweep / trace-cache benchmarks ----------------------------------------

// benchSweepPoints is a 4-point engine-parameter grid (LSQ depth) whose
// points share one trace configuration — the common shape of a design-space
// sweep, and the case the trace cache amortizes to a single generation.
func benchSweepPoints() []resim.SweepPoint {
	return resim.SweepGrid("lsq", resim.DefaultConfig(), []int{4, 8, 16, 32},
		func(c *resim.Config, v int) { c.LSQSize = v })
}

// BenchmarkSweepUncached is the pre-cache behavior: every point regenerates
// the workload trace from the functional simulator.
func BenchmarkSweepUncached(b *testing.B) {
	ses, err := resim.New(resim.WithTraceCache(nil))
	if err != nil {
		b.Fatal(err)
	}
	pts := benchSweepPoints()
	for i := 0; i < b.N; i++ {
		res, err := ses.Sweep(context.Background(), "gzip", benchInstrs, pts)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range res {
			if pr.Err != nil {
				b.Fatal(pr.Err)
			}
		}
	}
}

// BenchmarkSweepColdCache measures a first-ever sweep: a fresh cache per
// iteration, so each iteration pays one generation plus four replays.
func BenchmarkSweepColdCache(b *testing.B) {
	pts := benchSweepPoints()
	for i := 0; i < b.N; i++ {
		ses, err := resim.New(resim.WithTraceCache(resim.NewTraceCache(resim.TraceCacheConfig{})))
		if err != nil {
			b.Fatal(err)
		}
		res, err := ses.Sweep(context.Background(), "gzip", benchInstrs, pts)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range res {
			if pr.Err != nil {
				b.Fatal(pr.Err)
			}
		}
	}
}

// BenchmarkSweepWarmCache measures the steady state of iterative design
// exploration: the trace is already cached and every point only replays.
func BenchmarkSweepWarmCache(b *testing.B) {
	ses, err := resim.New(resim.WithTraceCache(resim.NewTraceCache(resim.TraceCacheConfig{})))
	if err != nil {
		b.Fatal(err)
	}
	pts := benchSweepPoints()
	// Warm the cache outside the timed region.
	if _, err := ses.Sweep(context.Background(), "gzip", benchInstrs, pts[:1]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ses.Sweep(context.Background(), "gzip", benchInstrs, pts)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range res {
			if pr.Err != nil {
				b.Fatal(pr.Err)
			}
		}
	}
}

// BenchmarkSweepRemoteLoopback measures the sharded sweep service end to
// end over localhost TCP: a coordinator plus two workers (each with its own
// warm trace cache) serving the standard 4-point sweep through
// Session.SweepRemote. The delta against BenchmarkSweepWarmCache is the
// full service overhead — framing, JSON, scheduling, result streaming.
// Gated in CI against the committed BENCH_baseline.json entry.
func BenchmarkSweepRemoteLoopback(b *testing.B) {
	coord := sweepd.NewCoordinator()
	addr, err := coord.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer coord.Close()
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	for i := 0; i < 2; i++ {
		go sweepd.Work(wctx, addr, sweepd.WorkerOptions{}) //nolint:errcheck
	}
	deadline := time.Now().Add(10 * time.Second)
	for coord.WorkerCount() < 2 {
		if time.Now().After(deadline) {
			b.Fatalf("only %d of 2 workers registered", coord.WorkerCount())
		}
		time.Sleep(time.Millisecond)
	}
	ses, err := resim.New()
	if err != nil {
		b.Fatal(err)
	}
	pts := benchSweepPoints()
	// Warm the workers' caches outside the timed region, like the local
	// warm-cache benchmark.
	if _, err := ses.SweepRemote(context.Background(), addr, "gzip", benchInstrs, pts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ses.SweepRemote(context.Background(), addr, "gzip", benchInstrs, pts)
		if err != nil {
			b.Fatal(err)
		}
		for _, pr := range res {
			if pr.Err != nil {
				b.Fatal(pr.Err)
			}
		}
	}
}

// BenchmarkJobSubmitThroughput measures the multi-tenant job platform end
// to end through its HTTP front door: two tenants alternate submitting
// single-point jobs against a loopback worker pool and stream each job to
// completion. The delta against BenchmarkSweepWarmCache's per-point cost is
// the platform overhead — admission, journal-free queueing, fair
// scheduling, JSON framing and the NDJSON result stream. Gated in CI
// against the committed BENCH_baseline.json entry.
func BenchmarkJobSubmitThroughput(b *testing.B) {
	// One shared cache: worker pick is load-based, so a per-worker cache
	// would leave cold generation noise in the timed region.
	traces := tracecache.New(tracecache.Config{})
	pool := jobd.StaticPool{
		sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Traces: traces}),
		sweepd.NewLoopbackWorker(sweepd.LoopbackOptions{Traces: traces}),
	}
	p, err := jobd.New(jobd.Options{Pool: pool, Tenants: []jobd.Tenant{
		{Name: "alice", Token: "tok-a"},
		{Name: "bob", Token: "tok-b"},
	}})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	clients := [2]*jobd.Client{
		{Server: srv.URL, Token: "tok-a", HTTPClient: srv.Client()},
		{Server: srv.URL, Token: "tok-b", HTTPClient: srv.Client()},
	}
	spec, err := sweepd.SpecOf(resim.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	req := jobd.SubmitRequest{Workload: "gzip", Instructions: benchInstrs,
		Points: []sweepd.WirePoint{{Name: "base", Config: spec}}}
	ctx := context.Background()
	runOne := func(c *jobd.Client) {
		st, err := c.Submit(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		state, err := c.Results(ctx, st.ID, nil)
		if err != nil {
			b.Fatal(err)
		}
		if state != jobd.StateDone {
			b.Fatalf("job %s ended %s", st.ID, state)
		}
	}
	// Warm both workers' trace caches outside the timed region, like the
	// other service benchmarks.
	runOne(clients[0])
	runOne(clients[1])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runOne(clients[i%2])
	}
}

// BenchmarkCheckpointOverhead measures the engine running with periodic
// state serialization (every 8192 cycles, a far tighter cadence than the
// 65536-cycle default) against BenchmarkEngineTraceDriven's plain run — the
// delta is the full checkpoint cost: capture of every subsystem plus the
// versioned JSON encoding. Reported metrics: checkpoints taken per run and
// encoded bytes per checkpoint.
func BenchmarkCheckpointOverhead(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	tc := funcsim.TraceConfig{Predictor: cfg.Predictor, WrongPathLen: cfg.WrongPathLen()}
	src, err := p.NewSource(tc, benchInstrs)
	if err != nil {
		b.Fatal(err)
	}
	var recs []trace.Record
	for {
		r, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		recs = append(recs, r)
	}
	slice := trace.NewSliceSource(recs)
	var ckpts, bytes int
	cfg.CheckpointEvery = 8192
	cfg.CheckpointSink = func(cp *core.Checkpoint) error {
		data, err := cp.Encode()
		if err != nil {
			return err
		}
		ckpts++
		bytes += len(data)
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ckpts, bytes = 0, 0
		slice.Reset()
		eng, err := core.New(cfg, slice, funcsim.CodeBase)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ckpts), "checkpoints")
	if ckpts > 0 {
		b.ReportMetric(float64(bytes)/float64(ckpts), "bytes_per_ckpt")
	}
}

// BenchmarkTraceGeneration isolates the cost the cache saves: one full
// trace materialization through the functional simulator.
func BenchmarkTraceGeneration(b *testing.B) {
	p, err := workload.ByName("gzip")
	if err != nil {
		b.Fatal(err)
	}
	tc := resim.DefaultConfig().TraceConfig()
	for i := 0; i < b.N; i++ {
		c := resim.NewTraceCache(resim.TraceCacheConfig{})
		tr, err := c.Get(context.Background(), p, tc, benchInstrs)
		if err != nil {
			b.Fatal(err)
		}
		if tr.Records() == 0 {
			b.Fatal("empty trace")
		}
	}
}
